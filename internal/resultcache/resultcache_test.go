package resultcache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestGetPutRoundTrip(t *testing.T) {
	c := New(64)
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache reported a hit")
	}
	c.Put("a", []byte("alpha"))
	v, ok := c.Get("a")
	if !ok || string(v) != "alpha" {
		t.Fatalf("Get(a) = %q, %v", v, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 || st.Bytes != int64(len("a")+len("alpha")) {
		t.Errorf("stats = %+v", st)
	}
}

// storedBytes walks the shards and sums the actual stored sizes (key plus
// value), the quantity Stats().Bytes claims to track.
func storedBytes(c *Cache) int64 {
	var n int64
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for el := s.lru.Front(); el != nil; el = el.Next() {
			e := el.Value.(*entry)
			n += int64(len(e.key) + len(e.val))
		}
		s.mu.Unlock()
	}
	return n
}

func TestByteAccountingMatchesStoredSizes(t *testing.T) {
	c := New(2 * nShards)
	// Mixed key and value lengths, enough inserts to force evictions, plus
	// same-key refreshes that grow and shrink the value.
	for i := 0; i < 8*nShards; i++ {
		c.Put(fmt.Sprintf("key-%d", i), []byte(fmt.Sprintf("value-%0*d", i%7, i)))
	}
	c.Put("key-0", []byte("grown-replacement-value"))
	c.Put("key-0", []byte("s"))
	st := c.Stats()
	if want := storedBytes(c); st.Bytes != want {
		t.Errorf("Stats().Bytes = %d, actual stored key+value bytes = %d", st.Bytes, want)
	}
	if st.Evictions == 0 {
		t.Error("test did not exercise eviction accounting")
	}
}

// shardKeys returns distinct keys that all map to the same shard of c.
func shardKeys(c *Cache, n int) []string {
	target := c.shardFor(fmt.Sprint("seed"))
	var out []string
	for i := 0; len(out) < n; i++ {
		k := fmt.Sprintf("key-%d", i)
		if c.shardFor(k) == target {
			out = append(out, k)
		}
	}
	return out
}

func TestLRUEvictionOrder(t *testing.T) {
	// Capacity 2 per shard; steer all keys onto one shard so eviction order
	// is fully observable.
	c := New(2 * nShards)
	k := shardKeys(c, 3)

	c.Put(k[0], []byte("0"))
	c.Put(k[1], []byte("1"))
	// Touch k0 so k1 becomes least-recent, then overflow the shard.
	if _, ok := c.Get(k[0]); !ok {
		t.Fatal("k0 missing before eviction")
	}
	c.Put(k[2], []byte("2"))

	if _, ok := c.peek(k[1]); ok {
		t.Error("least-recently-used key survived eviction")
	}
	for _, want := range []string{k[0], k[2]} {
		if _, ok := c.peek(want); !ok {
			t.Errorf("recently-used key %s evicted", want)
		}
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", st.Evictions)
	}
}

func TestEvictionBoundsOccupancy(t *testing.T) {
	const capacity = 2 * nShards
	c := New(capacity)
	for i := 0; i < 10*capacity; i++ {
		c.Put(fmt.Sprintf("k%d", i), []byte("x"))
	}
	st := c.Stats()
	if st.Entries > capacity {
		t.Errorf("entries = %d exceeds capacity %d", st.Entries, capacity)
	}
	if int(st.Evictions)+st.Entries != 10*capacity {
		t.Errorf("evictions(%d) + entries(%d) != inserts(%d)", st.Evictions, st.Entries, 10*capacity)
	}
	if want := storedBytes(c); st.Bytes != want {
		t.Errorf("bytes = %d, want %d (stored key+value bytes)", st.Bytes, want)
	}
}

func TestPutRefreshSameKey(t *testing.T) {
	c := New(64)
	c.Put("k", []byte("v1"))
	c.Put("k", []byte("longer-v2"))
	v, ok := c.Get("k")
	if !ok || string(v) != "longer-v2" {
		t.Fatalf("Get = %q, %v", v, ok)
	}
	st := c.Stats()
	if st.Entries != 1 || st.Bytes != int64(len("k")+len("longer-v2")) || st.Evictions != 0 {
		t.Errorf("stats after refresh = %+v", st)
	}
}

func TestSingleflight100ConcurrentIdenticalRequests(t *testing.T) {
	c := New(64)
	var computes atomic.Int64
	var wg sync.WaitGroup
	start := make(chan struct{})
	results := make([][]byte, 100)
	errs := make([]error, 100)
	for i := 0; i < 100; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			v, _, err := c.GetOrCompute(context.Background(), "hot", func() ([]byte, error) {
				computes.Add(1)
				time.Sleep(50 * time.Millisecond) // let the herd pile up
				return []byte("result"), nil
			})
			results[i], errs[i] = v, err
		}(i)
	}
	close(start)
	wg.Wait()

	if n := computes.Load(); n != 1 {
		t.Errorf("compute ran %d times, want exactly 1", n)
	}
	for i := range results {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if string(results[i]) != "result" {
			t.Errorf("caller %d got %q", i, results[i])
		}
	}
	st := c.Stats()
	if st.Hits+st.Misses+st.Coalesced == 0 {
		t.Error("no cache activity recorded")
	}
	if st.Inflight != 0 {
		t.Errorf("inflight = %d after all flights landed", st.Inflight)
	}
	// Exactly one caller led; everyone else either coalesced onto the
	// flight or hit the cache after it landed.
	if st.Misses-st.Coalesced != 1 {
		t.Errorf("misses(%d) - coalesced(%d) != 1 leader", st.Misses, st.Coalesced)
	}
}

func TestComputeErrorsAreNotCached(t *testing.T) {
	c := New(64)
	boom := errors.New("boom")
	var n atomic.Int64
	for i := 0; i < 3; i++ {
		_, _, err := c.GetOrCompute(context.Background(), "k", func() ([]byte, error) {
			n.Add(1)
			return nil, boom
		})
		if !errors.Is(err, boom) {
			t.Fatalf("err = %v", err)
		}
	}
	if n.Load() != 3 {
		t.Errorf("failed compute ran %d times, want 3 (errors must not cache)", n.Load())
	}
	v, _, err := c.GetOrCompute(context.Background(), "k", func() ([]byte, error) {
		return []byte("ok"), nil
	})
	if err != nil || string(v) != "ok" {
		t.Fatalf("recovery compute = %q, %v", v, err)
	}
	if _, ok := c.Get("k"); !ok {
		t.Error("successful value was not cached after earlier errors")
	}
}

func TestWaiterHonorsContext(t *testing.T) {
	c := New(64)
	leaderIn := make(chan struct{})
	release := make(chan struct{})
	go func() {
		_, _, _ = c.GetOrCompute(context.Background(), "k", func() ([]byte, error) {
			close(leaderIn)
			<-release
			return []byte("v"), nil
		})
	}()
	<-leaderIn
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := c.GetOrCompute(ctx, "k", func() ([]byte, error) {
		t.Error("waiter must not compute")
		return nil, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("waiter err = %v, want context.Canceled", err)
	}
	close(release)
}

func TestComputeLeaderRechecksCache(t *testing.T) {
	c := New(64)
	c.Put("k", []byte("already"))
	v, hit, err := c.Compute(context.Background(), "k", func() ([]byte, error) {
		t.Error("compute must not run when the value already landed")
		return nil, nil
	})
	if err != nil || !hit || string(v) != "already" {
		t.Errorf("Compute = %q, hit=%v, err=%v", v, hit, err)
	}
}
