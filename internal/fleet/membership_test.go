package fleet

import (
	"reflect"
	"testing"
)

func TestMembershipJoinLeaveEpochs(t *testing.T) {
	m := NewMembership([]string{"http://b:2/", " http://a:1 ", "http://a:1"})
	if got := m.Members(); !reflect.DeepEqual(got, []string{"http://a:1", "http://b:2"}) {
		t.Fatalf("initial members = %v", got)
	}
	if m.Epoch() != 0 {
		t.Fatalf("initial epoch = %d, want 0", m.Epoch())
	}

	if !m.Join("http://c:3") {
		t.Fatal("Join of a new member reported no change")
	}
	if m.Epoch() != 1 || !m.Contains("http://c:3") {
		t.Fatalf("after join: epoch %d members %v", m.Epoch(), m.Members())
	}
	// Re-announcing is idempotent: no change, no epoch churn.
	if m.Join("http://c:3/") {
		t.Fatal("re-join of a member reported a change")
	}
	if m.Epoch() != 1 {
		t.Fatalf("idempotent join moved the epoch to %d", m.Epoch())
	}

	if !m.Leave("http://a:1") {
		t.Fatal("Leave of a member reported no change")
	}
	if m.Epoch() != 2 || m.Contains("http://a:1") {
		t.Fatalf("after leave: epoch %d members %v", m.Epoch(), m.Members())
	}
	if m.Leave("http://a:1") {
		t.Fatal("leave of a non-member reported a change")
	}
	if m.Joins() != 1 || m.Leaves() != 1 {
		t.Errorf("Joins/Leaves = %d/%d, want 1/1", m.Joins(), m.Leaves())
	}
}

func TestMembershipApplyEpochRules(t *testing.T) {
	m := NewMembership([]string{"http://a:1", "http://b:2"})
	m.Join("http://c:3") // epoch 1

	// Older epoch: ignored.
	if m.Apply([]string{"http://z:9"}, 0) {
		t.Fatal("older snapshot applied")
	}
	// Equal epoch, identical list: no-op.
	if m.Apply([]string{"http://a:1", "http://b:2", "http://c:3"}, 1) {
		t.Fatal("identical snapshot reported a change")
	}
	if m.Epoch() != 1 {
		t.Fatalf("no-op applies moved the epoch to %d", m.Epoch())
	}

	// Newer epoch: adopted wholesale, even when it shrinks the list.
	if !m.Apply([]string{"http://a:1"}, 5) {
		t.Fatal("newer snapshot not applied")
	}
	if m.Epoch() != 5 || !reflect.DeepEqual(m.Members(), []string{"http://a:1"}) {
		t.Fatalf("after newer apply: epoch %d members %v", m.Epoch(), m.Members())
	}

	// Equal epoch, different list: union under epoch+1 — both racing sides
	// compute the same merge, so one more exchange converges them.
	a := NewMembership([]string{"http://a:1"})
	b := NewMembership([]string{"http://a:1"})
	a.Join("http://x:1") // epoch 1 on both sides, different lists
	b.Join("http://y:1")
	av, ae := a.Snapshot()
	bv, be := b.Snapshot()
	if !a.Apply(bv, be) || !b.Apply(av, ae) {
		t.Fatal("conflicting snapshots not applied")
	}
	am, ape := a.Snapshot()
	bm, bpe := b.Snapshot()
	if !reflect.DeepEqual(am, bm) || ape != bpe {
		t.Fatalf("conflict resolution diverged: %v@%d vs %v@%d", am, ape, bm, bpe)
	}
	if want := []string{"http://a:1", "http://x:1", "http://y:1"}; !reflect.DeepEqual(am, want) {
		t.Fatalf("union = %v, want %v", am, want)
	}
	if ape != 2 {
		t.Fatalf("union epoch = %d, want 2", ape)
	}
}

func TestMembershipOnChange(t *testing.T) {
	m := NewMembership([]string{"http://a:1"})
	type change struct {
		members []string
		epoch   uint64
	}
	var got []change
	m.OnChange(func(members []string, epoch uint64) {
		got = append(got, change{members, epoch})
	})

	m.Join("http://b:2")
	m.Leave("http://a:1")
	m.Apply([]string{"http://z:9"}, 10)
	m.Apply([]string{"http://z:9"}, 3) // older: no callback

	want := []change{
		{[]string{"http://a:1", "http://b:2"}, 1},
		{[]string{"http://b:2"}, 2},
		{[]string{"http://z:9"}, 10},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("OnChange sequence = %+v, want %+v", got, want)
	}
	// Apply counted one add and one remove against the previous view.
	if m.Joins() != 2 || m.Leaves() != 2 {
		t.Errorf("Joins/Leaves = %d/%d, want 2/2", m.Joins(), m.Leaves())
	}
}
