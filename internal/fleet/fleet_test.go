package fleet

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"cdcs/internal/testutil"
)

// noProbe builds a fleet whose breakers are driven only by reported request
// outcomes — no background prober, no timing dependence.
func noProbe(replicas []string, opts Options) *Fleet {
	opts.ProbeInterval = -1
	return New(replicas, opts)
}

func failN(t *testing.T, f *Fleet, url string, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		f.Begin(url)(errors.New("boom"))
	}
}

func TestBreakerOpensOnConsecutiveFailures(t *testing.T) {
	f := noProbe([]string{"http://a:1"}, Options{BreakerThreshold: 3})
	defer f.Close()

	failN(t, f, "http://a:1", 2)
	if !f.Healthy("http://a:1") {
		t.Fatal("breaker opened below threshold")
	}
	// A success resets the streak: two more failures must not trip.
	f.Begin("http://a:1")(nil)
	failN(t, f, "http://a:1", 2)
	if !f.Healthy("http://a:1") {
		t.Fatal("failure streak survived a success")
	}
	failN(t, f, "http://a:1", 1)
	if f.Healthy("http://a:1") {
		t.Fatal("breaker still closed after 3 consecutive failures")
	}
	if got := f.Trips(); got != 1 {
		t.Errorf("Trips = %d, want 1", got)
	}
	snap := f.Snapshot()
	if len(snap) != 1 || snap[0].State != "open" || snap[0].Errors != 5 {
		t.Errorf("snapshot = %+v", snap)
	}
}

func TestBreakerHalfOpenTrialClosesOrReopens(t *testing.T) {
	f := noProbe([]string{"http://a:1"}, Options{
		BreakerThreshold: 1,
		BreakerCooldown:  30 * time.Millisecond,
	})
	defer f.Close()

	failN(t, f, "http://a:1", 1)
	if f.Healthy("http://a:1") {
		t.Fatal("breaker closed after trip")
	}
	// Cooldown elapses: half-open admits trial traffic.
	time.Sleep(40 * time.Millisecond)
	if !f.Healthy("http://a:1") {
		t.Fatal("cooldown did not admit trial traffic")
	}
	if st := f.Snapshot()[0].State; st != "half-open" {
		t.Fatalf("state after cooldown = %q, want half-open", st)
	}
	// Failed trial: back to open, no new trip counted (same outage).
	failN(t, f, "http://a:1", 1)
	if f.Healthy("http://a:1") {
		t.Fatal("failed trial left the breaker admitting traffic")
	}
	if got := f.Trips(); got != 1 {
		t.Errorf("Trips after failed trial = %d, want 1", got)
	}
	// Second trial succeeds: closed again.
	time.Sleep(40 * time.Millisecond)
	if !f.Healthy("http://a:1") {
		t.Fatal("second cooldown did not admit traffic")
	}
	f.Begin("http://a:1")(nil)
	if st := f.Snapshot()[0].State; st != "closed" {
		t.Errorf("state after successful trial = %q, want closed", st)
	}
}

// TestProberTripsAndRecovers runs the real probe loop against a replica
// that dies and comes back: membership must follow, with no request
// traffic at all.
func TestProberTripsAndRecovers(t *testing.T) {
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	t.Cleanup(backend.Close)
	proxy, err := testutil.NewFaultProxy(backend.URL)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(proxy.Close)

	f := New([]string{proxy.URL()}, Options{
		ProbeInterval:    10 * time.Millisecond,
		ProbeTimeout:     200 * time.Millisecond,
		BreakerThreshold: 2,
		BreakerCooldown:  20 * time.Millisecond,
	})
	f.Start()
	defer f.Close()

	wait := func(pred func() bool, what string) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for !pred() {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s: %+v", what, f.Snapshot())
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	wait(func() bool { return f.Snapshot()[0].State == "closed" && f.Healthy(proxy.URL()) },
		"initial probes to settle closed")

	proxy.Kill()
	wait(func() bool { return f.Trips() >= 1 && !f.Healthy(proxy.URL()) },
		"breaker to trip after death")

	proxy.Revive()
	wait(func() bool { return f.Snapshot()[0].State == "closed" },
		"probes to close the breaker after revival")

	// Probes are membership-only: no request counters moved.
	if snap := f.Snapshot()[0]; snap.Requests != 0 || snap.Errors != 0 {
		t.Errorf("probes leaked into request counters: %+v", snap)
	}
}

func TestOrderPrefersLeastLoadedAmongTopK(t *testing.T) {
	ranked := []string{"http://a:1", "http://b:2", "http://c:3"}
	f := noProbe(ranked, Options{TopK: 2})
	defer f.Close()

	// Idle fleet: pure rendezvous order — cache affinity preserved.
	if got := f.Order(ranked); got[0] != "http://a:1" || got[1] != "http://b:2" || got[2] != "http://c:3" {
		t.Fatalf("idle Order = %v, want rank order", got)
	}

	// Load the owner: the second holder goes first; the tail never joins
	// the competition.
	end1 := f.Begin("http://a:1")
	end2 := f.Begin("http://a:1")
	if got := f.Order(ranked); got[0] != "http://b:2" || got[1] != "http://a:1" || got[2] != "http://c:3" {
		t.Fatalf("loaded Order = %v, want b,a,c", got)
	}
	end1(nil)
	end2(nil)

	// Equal inflight: lower EWMA latency wins within the top K.
	slow := f.Begin("http://a:1")
	time.Sleep(30 * time.Millisecond)
	slow(nil)
	fast := f.Begin("http://b:2")
	fast(nil)
	if got := f.Order(ranked); got[0] != "http://b:2" {
		t.Fatalf("Order with slow owner = %v, want b first", got)
	}

	// TopK=1 restores pure rendezvous routing no matter the load.
	f1 := noProbe(ranked, Options{TopK: 1})
	defer f1.Close()
	e := f1.Begin("http://a:1")
	defer e(nil)
	if got := f1.Order(ranked); got[0] != "http://a:1" {
		t.Fatalf("TopK=1 Order = %v, want rank order", got)
	}
}

func TestOrderDemotesUnhealthy(t *testing.T) {
	ranked := []string{"http://a:1", "http://b:2", "http://c:3"}
	f := noProbe(ranked, Options{BreakerThreshold: 1, TopK: 2})
	defer f.Close()

	failN(t, f, "http://a:1", 1)
	got := f.Order(ranked)
	if got[len(got)-1] != "http://a:1" {
		t.Fatalf("Order = %v, want breaker-open a last", got)
	}
	if got[0] != "http://b:2" {
		t.Fatalf("Order = %v, want b promoted to first", got)
	}
}

func TestAlternate(t *testing.T) {
	ranked := []string{"http://a:1", "http://b:2", "http://c:3"}
	f := noProbe(ranked, Options{BreakerThreshold: 1, TopK: 2})
	defer f.Close()

	if got := f.Alternate(ranked, "http://a:1"); got != "http://b:2" {
		t.Errorf("Alternate(exclude a) = %q, want b", got)
	}
	// c is outside the top-K neighborhood: no alternate once b is down.
	failN(t, f, "http://b:2", 1)
	if got := f.Alternate(ranked, "http://a:1"); got != "" {
		t.Errorf("Alternate with b open = %q, want none", got)
	}
}

func TestNewNormalizesAndUnknownURLsHealthy(t *testing.T) {
	f := noProbe([]string{" http://a:1/ ", "", "http://a:1", "http://b:2"}, Options{})
	defer f.Close()
	reps := f.Replicas()
	if len(reps) != 2 || reps[0] != "http://a:1" || reps[1] != "http://b:2" {
		t.Fatalf("Replicas = %v", reps)
	}
	if !f.Healthy("http://elsewhere:9") {
		t.Error("unknown URL reported unhealthy")
	}
	f.Begin("http://elsewhere:9")(errors.New("x")) // must be a safe no-op
}
