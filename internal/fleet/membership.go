package fleet

import (
	"sort"
	"sync"
	"sync/atomic"

	"strings"
)

// Membership is the epoch-versioned member registry behind dynamic fleets:
// a mutable, normalized, sorted list of replica base URLs plus a counter
// that totally orders changes. Every replica (and every sweep coordinator)
// holds its own Membership and converges on the fleet-wide view by
// exchanging (members, epoch) snapshots over the existing peer links — a
// join or leave bumps the epoch, snapshots with a newer epoch are adopted
// wholesale, older ones are ignored, and equal-epoch disagreements (two
// concurrent changes that raced to the same counter value) are resolved by
// taking the union under a fresh epoch, which both sides compute
// identically and therefore agree on.
//
// The registry is transport-agnostic: internal/server propagates snapshots
// via POST /v1/join and /v1/leave and piggybacks them on /healthz, and the
// client-side fleet view (Options.AdoptMembers) applies snapshots its
// health probes observe. Membership itself only versions and merges lists.
type Membership struct {
	mu       sync.Mutex
	epoch    uint64
	members  []string // normalized, sorted, deduplicated
	onChange []func(members []string, epoch uint64)

	joins  atomic.Int64 // members added (announcements and adopted snapshots)
	leaves atomic.Int64 // members removed
}

// normalizeMember mirrors fanout.NormalizeReplicas for a single URL (the
// fleet package cannot import fanout — fanout imports fleet).
func normalizeMember(url string) string {
	return strings.TrimRight(strings.TrimSpace(url), "/")
}

// normalizeMembers normalizes, deduplicates and sorts a member list. The
// sorted order makes equal views comparable bytewise and keeps every
// replica's list identical, so (members, epoch) snapshots from different
// replicas are directly comparable. Rendezvous ranking is order-independent,
// so sorting never moves a cell.
func normalizeMembers(urls []string) []string {
	seen := map[string]bool{}
	out := make([]string, 0, len(urls))
	for _, u := range urls {
		u = normalizeMember(u)
		if u == "" || seen[u] {
			continue
		}
		seen[u] = true
		out = append(out, u)
	}
	sort.Strings(out)
	return out
}

// NewMembership builds a registry holding the initial members at epoch 0.
func NewMembership(initial []string) *Membership {
	return &Membership{members: normalizeMembers(initial)}
}

// Members returns a copy of the current member list (sorted).
func (m *Membership) Members() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]string(nil), m.members...)
}

// Epoch returns the current epoch.
func (m *Membership) Epoch() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.epoch
}

// Snapshot returns the member list and epoch as one consistent pair.
func (m *Membership) Snapshot() ([]string, uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]string(nil), m.members...), m.epoch
}

// Contains reports whether url is currently a member.
func (m *Membership) Contains(url string) bool {
	url = normalizeMember(url)
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, u := range m.members {
		if u == url {
			return true
		}
	}
	return false
}

// Join adds url as a member, bumping the epoch. Reports whether the list
// changed (an already-present member is a no-op at the old epoch, so
// re-announcing a join is idempotent and does not churn the fleet).
func (m *Membership) Join(url string) bool {
	url = normalizeMember(url)
	if url == "" {
		return false
	}
	m.mu.Lock()
	for _, u := range m.members {
		if u == url {
			m.mu.Unlock()
			return false
		}
	}
	m.members = normalizeMembers(append(m.members, url))
	m.epoch++
	members, epoch := append([]string(nil), m.members...), m.epoch
	fns := append(make([]func([]string, uint64), 0, len(m.onChange)), m.onChange...)
	m.mu.Unlock()
	m.joins.Add(1)
	for _, fn := range fns {
		fn(members, epoch)
	}
	return true
}

// Leave removes url, bumping the epoch. Reports whether the list changed.
func (m *Membership) Leave(url string) bool {
	url = normalizeMember(url)
	m.mu.Lock()
	kept := m.members[:0]
	removed := false
	for _, u := range m.members {
		if u == url {
			removed = true
			continue
		}
		kept = append(kept, u)
	}
	if !removed {
		m.mu.Unlock()
		return false
	}
	m.members = kept
	m.epoch++
	members, epoch := append([]string(nil), m.members...), m.epoch
	fns := append(make([]func([]string, uint64), 0, len(m.onChange)), m.onChange...)
	m.mu.Unlock()
	m.leaves.Add(1)
	for _, fn := range fns {
		fn(members, epoch)
	}
	return true
}

// Apply merges a (members, epoch) snapshot received from another replica.
// A strictly newer epoch replaces the local view; an equal epoch with an
// identical list is a no-op; an equal epoch with a different list is a
// concurrency conflict, resolved by adopting the union under epoch+1 (both
// conflicting sides compute the same union and the same successor epoch, so
// one more exchange converges them); an older epoch is ignored. Reports
// whether the local view changed — the caller then re-propagates its view
// so stragglers catch up.
func (m *Membership) Apply(members []string, epoch uint64) bool {
	incoming := normalizeMembers(members)
	m.mu.Lock()
	switch {
	case epoch > m.epoch:
		// Newer view wins wholesale.
	case epoch < m.epoch:
		m.mu.Unlock()
		return false
	case equalMembers(incoming, m.members):
		m.mu.Unlock()
		return false
	default:
		// Same epoch, different lists: two changes raced. The union under
		// the successor epoch is a deterministic merge both sides agree on.
		incoming = normalizeMembers(append(incoming, m.members...))
		epoch++
	}
	added, removed := diffMembers(m.members, incoming)
	m.members = incoming
	m.epoch = epoch
	snapshot, snapEpoch := append([]string(nil), m.members...), m.epoch
	fns := append(make([]func([]string, uint64), 0, len(m.onChange)), m.onChange...)
	m.mu.Unlock()
	m.joins.Add(int64(added))
	m.leaves.Add(int64(removed))
	for _, fn := range fns {
		fn(snapshot, snapEpoch)
	}
	return true
}

// OnChange registers a callback invoked (outside the registry lock) after
// every change with the new list and epoch. Callbacks must be fast; they run
// on the goroutine that applied the change.
func (m *Membership) OnChange(fn func(members []string, epoch uint64)) {
	m.mu.Lock()
	m.onChange = append(m.onChange, fn)
	m.mu.Unlock()
}

// Joins returns the total number of members ever added (including via
// adopted snapshots); Leaves the total removed. They feed the
// cdcs_fleet_joins_total metric and its drain-side sibling.
func (m *Membership) Joins() int64  { return m.joins.Load() }
func (m *Membership) Leaves() int64 { return m.leaves.Load() }

// equalMembers compares two normalized sorted lists.
func equalMembers(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// diffMembers counts entries of next not in prev (added) and of prev not in
// next (removed); both lists are normalized and sorted.
func diffMembers(prev, next []string) (added, removed int) {
	i, j := 0, 0
	for i < len(prev) && j < len(next) {
		switch {
		case prev[i] == next[j]:
			i++
			j++
		case prev[i] < next[j]:
			removed++
			i++
		default:
			added++
			j++
		}
	}
	removed += len(prev) - i
	added += len(next) - j
	return added, removed
}
