// Package fleet maintains a live view of a set of HTTP replicas: per-
// replica load and latency instrumentation fed by every request, health-
// checked membership via periodic probes of each replica's /healthz, and a
// three-state circuit breaker per replica (closed → open after consecutive
// failures → half-open trial after a cooldown → closed on success), so
// replicas leave and rejoin the serving set live, without operator action.
//
// The member set itself is mutable at runtime (SetMembers), and a fleet can
// follow the cluster's own membership protocol: replica /healthz responses
// carry an identity token, a membership epoch and the member list, and a
// fleet built with Options.AdoptMembers applies those snapshots to its view
// (via the epoch rules of Membership), so a coordinator discovers joins and
// drains mid-sweep without any out-of-band configuration. The identity
// token also distinguishes a *restarted* replica on a reused address from a
// revived one: a changed token resets the record (breaker, failure streak,
// latency EWMA), because the new process shares nothing but the address.
//
// Consumers — the sweep fan-out client (internal/fanout) and the result
// store's peer tier (internal/resultstore) — ask the view two questions:
// "is this replica usable right now?" (Healthy) and "in what order should
// these rendezvous candidates be tried?" (Order). Order keeps the
// DistCache-style two-layer shape: the top-K rendezvous holders of a key
// stay the preferred servers (cache affinity), but among them the
// least-loaded healthy one goes first, so load skew steers requests without
// scattering the key across the whole fleet.
//
// The view deliberately knows nothing about rendezvous hashing or request
// semantics: callers hand it candidate lists already ranked by fanout.Rank
// and report request outcomes via Begin; the view only reorders and counts.
package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"
)

// State is a replica's circuit-breaker state.
type State int

const (
	// StateClosed: healthy, serving normally.
	StateClosed State = iota
	// StateOpen: tripped on consecutive failures; not routed to until the
	// cooldown elapses (except as a last resort when nothing else is left).
	StateOpen
	// StateHalfOpen: cooldown elapsed; trial traffic admitted. A success
	// closes the breaker, a failure re-opens it.
	StateHalfOpen
)

// String implements fmt.Stringer with the conventional breaker names.
func (s State) String() string {
	switch s {
	case StateClosed:
		return "closed"
	case StateOpen:
		return "open"
	case StateHalfOpen:
		return "half-open"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// Options tunes a Fleet. The zero value picks sensible defaults.
type Options struct {
	// ProbeInterval is the period of the background /healthz probes
	// (default 2s). Negative disables probing entirely — request outcomes
	// alone then drive the breakers, so a dead replica is only noticed
	// when traffic hits it.
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe request (default 1s).
	ProbeTimeout time.Duration
	// ProbePath is the liveness endpoint probed on each replica (default
	// "/healthz").
	ProbePath string
	// BreakerThreshold is the number of consecutive failures (requests or
	// probes) that opens a replica's breaker (default 3).
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker waits before admitting
	// half-open trial traffic (default 4×ProbeInterval, at least 1s).
	BreakerCooldown time.Duration
	// EWMAAlpha is the smoothing factor of the per-replica latency EWMA
	// (default 0.3; higher tracks faster).
	EWMAAlpha float64
	// TopK is how many of a key's top rendezvous holders compete on load
	// in Order (default 2; 1 restores pure rendezvous routing).
	TopK int
	// Client issues the probes (default: a client with ProbeTimeout).
	Client *http.Client
	// AdoptMembers makes the member set dynamic: membership snapshots
	// carried in probed healthz responses are applied (under Membership's
	// epoch rules) and the fleet re-targets its probes and routing to the
	// adopted list. Without it the member set given to New is fixed unless
	// the caller drives SetMembers itself.
	AdoptMembers bool
	// OnMembership, if set, is invoked after every member-set change (from
	// SetMembers or an adopted snapshot) with the new list and epoch.
	// Called outside fleet locks; must be safe for concurrent use.
	OnMembership func(members []string, epoch uint64)
}

func (o Options) withDefaults() Options {
	if o.ProbeInterval == 0 {
		o.ProbeInterval = 2 * time.Second
	}
	if o.ProbeTimeout <= 0 {
		o.ProbeTimeout = time.Second
	}
	if o.ProbePath == "" {
		o.ProbePath = "/healthz"
	}
	if o.BreakerThreshold <= 0 {
		o.BreakerThreshold = 3
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = 4 * o.ProbeInterval
		if o.BreakerCooldown < time.Second {
			o.BreakerCooldown = time.Second
		}
	}
	if o.EWMAAlpha <= 0 || o.EWMAAlpha > 1 {
		o.EWMAAlpha = 0.3
	}
	if o.TopK <= 0 {
		o.TopK = 2
	}
	return o
}

// rpsBuckets is the sliding-window width, in seconds, of the RPS estimate.
const rpsBuckets = 8

// replica is one member's live record. All mutable fields are guarded by mu.
type replica struct {
	url string

	mu           sync.Mutex
	id           string // instance identity token from healthz ("" until seen)
	incarnations int64  // identity-token changes observed (restarts detected)
	state        State
	consecFails  int
	openedAt     time.Time // when the breaker last opened
	ewmaMs       float64   // EWMA of successful request service latency
	inflight     int
	requests     int64 // completed requests (not probes)
	errors       int64 // failed requests (not probes)
	trips        int64 // closed → open transitions
	buckets      [rpsBuckets]int64
	lastSec      int64
}

// healthzInfo is the identity and membership payload replicas embed in
// /healthz responses (internal/server emits it; extra fields are ignored).
type healthzInfo struct {
	Status  string   `json:"status"`
	ID      string   `json:"id"`
	Epoch   uint64   `json:"epoch"`
	Members []string `json:"members"`
}

// Fleet is the live view. Create with New, start the prober with Start,
// release with Close. All methods are safe for concurrent use.
type Fleet struct {
	opts Options

	mu   sync.RWMutex // guards urls and reps (the member set)
	urls []string
	reps map[string]*replica

	mem *Membership // non-nil with AdoptMembers: the followed registry

	ctx       context.Context
	cancel    context.CancelFunc
	startOnce sync.Once
	stopOnce  sync.Once
	wg        sync.WaitGroup
}

// New builds a fleet view over replica base URLs (normalized the same way
// fanout.NormalizeReplicas does, so the two layers agree on URL strings).
// The prober does not run until Start.
func New(replicas []string, opts Options) *Fleet {
	f := &Fleet{
		opts: opts.withDefaults(),
		reps: map[string]*replica{},
	}
	f.ctx, f.cancel = context.WithCancel(context.Background())
	if f.opts.Client == nil {
		f.opts.Client = &http.Client{Timeout: f.opts.ProbeTimeout}
	}
	f.setMembersLocked(normalizeMembers(replicas))
	if f.opts.AdoptMembers {
		f.mem = NewMembership(replicas)
		f.mem.OnChange(func(members []string, epoch uint64) {
			f.SetMembers(members)
			if f.opts.OnMembership != nil {
				f.opts.OnMembership(members, epoch)
			}
		})
	}
	return f
}

// Replicas returns the current normalized member URLs.
func (f *Fleet) Replicas() []string {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return append([]string(nil), f.urls...)
}

// Membership returns the registry this fleet follows (nil unless built with
// AdoptMembers). Callers may Apply snapshots they obtain out of band — e.g.
// the body of a join announcement — and the fleet view follows.
func (f *Fleet) Membership() *Membership { return f.mem }

// SetMembers replaces the member set. Records of retained members (breaker
// state, latency, counters) survive; new members start fresh; removed
// members are dropped — their in-flight completion callbacks still run but
// update records no longer in the view. With AdoptMembers the set normally
// arrives via snapshots instead; calling SetMembers directly then only
// changes the view until the next snapshot.
func (f *Fleet) SetMembers(urls []string) {
	next := normalizeMembers(urls)
	f.mu.Lock()
	f.setMembersLocked(next)
	f.mu.Unlock()
}

func (f *Fleet) setMembersLocked(next []string) {
	reps := make(map[string]*replica, len(next))
	for _, u := range next {
		if r, ok := f.reps[u]; ok {
			reps[u] = r
		} else {
			reps[u] = &replica{url: u}
		}
	}
	f.urls = next
	f.reps = reps
}

// Start launches the background health prober (a no-op when probing is
// disabled). Safe to call more than once.
func (f *Fleet) Start() {
	if f.opts.ProbeInterval < 0 {
		return
	}
	f.startOnce.Do(func() {
		f.wg.Add(1)
		go f.probeLoop()
	})
}

// Close stops the prober and waits for in-flight probes. Probes are bound
// to the fleet's context, so a probe blocked mid-dial is cancelled rather
// than awaited. Safe to call more than once, and without Start.
func (f *Fleet) Close() {
	f.stopOnce.Do(f.cancel)
	f.wg.Wait()
}

// probeLoop probes every member each tick, concurrently, so one hung
// replica cannot delay the others' verdicts.
func (f *Fleet) probeLoop() {
	defer f.wg.Done()
	t := time.NewTicker(f.opts.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-f.ctx.Done():
			return
		case <-t.C:
		}
		f.mu.RLock()
		targets := make([]*replica, 0, len(f.urls))
		for _, url := range f.urls {
			targets = append(targets, f.reps[url])
		}
		f.mu.RUnlock()
		var wg sync.WaitGroup
		for _, r := range targets {
			wg.Add(1)
			go func(r *replica) {
				defer wg.Done()
				f.probeOne(r)
			}(r)
		}
		wg.Wait()
	}
}

// probeOne issues one liveness probe and feeds its verdict into the breaker.
// Probes drive membership only: they never touch the latency EWMA or the
// request counters, so an idle fleet's metrics stay request-shaped. The
// probe context descends from the fleet's, so Close aborts a blocked dial.
//
// Any parseable response body — healthy or not — may carry the replica's
// identity and a membership snapshot; a draining replica answers 503 but
// still propagates the member list it is leaving.
func (f *Fleet) probeOne(r *replica) {
	ctx, cancel := context.WithTimeout(f.ctx, f.opts.ProbeTimeout)
	defer cancel()
	ok := false
	var info healthzInfo
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.url+f.opts.ProbePath, nil)
	if err == nil {
		resp, rerr := f.opts.Client.Do(req)
		if rerr == nil {
			body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
			resp.Body.Close()
			ok = resp.StatusCode == http.StatusOK
			_ = json.Unmarshal(body, &info)
		}
	}
	r.mu.Lock()
	if info.ID != "" {
		r.observeIdentityLocked(info.ID)
	}
	if ok {
		r.successLocked()
	} else {
		r.failureLocked(f.opts.BreakerThreshold, time.Now())
	}
	r.mu.Unlock()
	if f.mem != nil && len(info.Members) > 0 {
		f.mem.Apply(info.Members, info.Epoch)
	}
}

// observeIdentityLocked records the instance identity a response carried.
// A changed token means a different process answered on a reused address —
// a restart, not a revival — so everything learned about the old instance
// (breaker verdict, failure streak, latency EWMA) is discarded: the new
// instance starts with a clean record and, crucially, an empty cache, so a
// stale "dead" or "slow" verdict must not suppress or distort traffic to it.
func (r *replica) observeIdentityLocked(id string) {
	if r.id == id {
		return
	}
	if r.id != "" {
		r.incarnations++
		r.state = StateClosed
		r.consecFails = 0
		r.openedAt = time.Time{}
		r.ewmaMs = 0
	}
	r.id = id
}

// successLocked resets the failure streak and closes the breaker: a replica
// that answers — trial traffic in half-open, a probe after a restart — has
// rejoined.
func (r *replica) successLocked() {
	r.consecFails = 0
	r.state = StateClosed
}

// failureLocked advances the failure streak and the breaker state machine.
func (r *replica) failureLocked(threshold int, now time.Time) {
	r.consecFails++
	switch r.state {
	case StateClosed:
		if r.consecFails >= threshold {
			r.state = StateOpen
			r.openedAt = now
			r.trips++
		}
	case StateHalfOpen:
		// Failed trial: back to open, restarting the cooldown. Not a new
		// trip — the original outage is still in progress.
		r.state = StateOpen
		r.openedAt = now
	case StateOpen:
		// A last-resort attempt failed while open; nothing changes.
	}
}

// usableLocked reports whether the replica may receive traffic, lazily
// promoting open → half-open once the cooldown elapses (the state
// transition that admits trial traffic).
func (r *replica) usableLocked(cooldown time.Duration, now time.Time) bool {
	switch r.state {
	case StateClosed, StateHalfOpen:
		return true
	default:
		if now.Sub(r.openedAt) >= cooldown {
			r.state = StateHalfOpen
			return true
		}
		return false
	}
}

// rep looks up a member record under the member-set lock.
func (f *Fleet) rep(url string) *replica {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.reps[url]
}

// Healthy reports whether url may receive traffic: breaker closed, or
// half-open (including an open breaker whose cooldown just elapsed).
// Unknown URLs are healthy — the view only vets its own members.
func (f *Fleet) Healthy(url string) bool {
	r := f.rep(url)
	if r == nil {
		return true
	}
	now := time.Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.usableLocked(f.opts.BreakerCooldown, now)
}

// Begin records the start of one request to url and returns the completion
// callback: call it with the request's outcome (nil on success) and the
// view updates in-flight, latency EWMA, RPS, error counters and the
// breaker. Unknown URLs return a no-op callback.
func (f *Fleet) Begin(url string) func(err error) {
	r := f.rep(url)
	if r == nil {
		return func(error) {}
	}
	start := time.Now()
	r.mu.Lock()
	r.inflight++
	r.mu.Unlock()
	return func(err error) {
		now := time.Now()
		r.mu.Lock()
		defer r.mu.Unlock()
		r.inflight--
		r.requests++
		r.tickLocked(now.Unix())
		if err != nil {
			r.errors++
			r.failureLocked(f.opts.BreakerThreshold, now)
			return
		}
		ms := float64(now.Sub(start)) / float64(time.Millisecond)
		if r.ewmaMs == 0 {
			r.ewmaMs = ms
		} else {
			r.ewmaMs = f.opts.EWMAAlpha*ms + (1-f.opts.EWMAAlpha)*r.ewmaMs
		}
		r.successLocked()
	}
}

// tickLocked advances the RPS ring to sec and counts one request in it.
func (r *replica) tickLocked(sec int64) {
	if d := sec - r.lastSec; d > 0 {
		if d > rpsBuckets {
			d = rpsBuckets
		}
		for i := int64(0); i < d; i++ {
			r.buckets[(r.lastSec+1+i)%rpsBuckets] = 0
		}
		r.lastSec = sec
	}
	r.buckets[sec%rpsBuckets]++
}

// Order returns the routing order for candidates already ranked by
// rendezvous (fanout.Rank): the healthy replicas among the top-K holders
// first, least-loaded first (fewest in-flight requests, then lowest EWMA
// latency, then rendezvous position — so an idle fleet degenerates to pure
// rendezvous routing and keeps its cache affinity), followed by the
// remaining healthy candidates in rank order, with breaker-open replicas
// last as the final resort. Candidates the view does not track keep their
// rank positions and count as healthy.
func (f *Fleet) Order(ranked []string) []string {
	if len(ranked) < 2 {
		return ranked
	}
	type cand struct {
		url      string
		pos      int
		healthy  bool
		inflight int
		ewmaMs   float64
	}
	now := time.Now()
	cands := make([]cand, len(ranked))
	for i, url := range ranked {
		c := cand{url: url, pos: i, healthy: true}
		if r := f.rep(url); r != nil {
			r.mu.Lock()
			c.healthy = r.usableLocked(f.opts.BreakerCooldown, now)
			c.inflight = r.inflight
			c.ewmaMs = r.ewmaMs
			r.mu.Unlock()
		}
		cands[i] = c
	}
	k := f.opts.TopK
	if k > len(cands) {
		k = len(cands)
	}
	// The top-K healthy holders compete on load; everything after keeps
	// rank order within its health class.
	head := make([]cand, 0, k)
	var tail, down []cand
	for i, c := range cands {
		switch {
		case !c.healthy:
			down = append(down, c)
		case i < k:
			head = append(head, c)
		default:
			tail = append(tail, c)
		}
	}
	sort.SliceStable(head, func(i, j int) bool {
		if head[i].inflight != head[j].inflight {
			return head[i].inflight < head[j].inflight
		}
		if head[i].ewmaMs != head[j].ewmaMs {
			return head[i].ewmaMs < head[j].ewmaMs
		}
		return head[i].pos < head[j].pos
	})
	out := make([]string, 0, len(ranked))
	for _, c := range head {
		out = append(out, c.url)
	}
	for _, c := range tail {
		out = append(out, c.url)
	}
	for _, c := range down {
		out = append(out, c.url)
	}
	return out
}

// Alternate returns the first healthy replica among ranked's top-K holders
// other than exclude — the target a hot key is replicated to so a second
// warm copy exists inside the key's rendezvous neighborhood. Empty when no
// such holder exists.
func (f *Fleet) Alternate(ranked []string, exclude string) string {
	k := f.opts.TopK
	if k > len(ranked) {
		k = len(ranked)
	}
	for _, url := range ranked[:k] {
		if url != exclude && f.Healthy(url) {
			return url
		}
	}
	return ""
}

// ReplicaStats is one member's snapshot.
type ReplicaStats struct {
	URL string `json:"url"`
	// ID is the replica's instance identity token, as last seen in a
	// healthz response ("" until one is observed).
	ID string `json:"id,omitempty"`
	// State is the breaker state: "closed", "open" or "half-open".
	State string `json:"state"`
	// EWMALatencyMs is the smoothed service latency of successful requests,
	// in milliseconds (0 until the first success).
	EWMALatencyMs float64 `json:"ewma_latency_ms"`
	// Inflight is the number of requests currently outstanding.
	Inflight int `json:"inflight"`
	// RPS is the completed-request rate over the last few seconds.
	RPS float64 `json:"rps"`
	// Requests and Errors count completed and failed requests (probes are
	// membership-only and excluded).
	Requests int64 `json:"requests"`
	Errors   int64 `json:"errors"`
	// Trips counts closed → open breaker transitions.
	Trips int64 `json:"breaker_trips"`
	// Incarnations counts identity-token changes: how many times a new
	// process was detected answering on this address.
	Incarnations int64 `json:"incarnations,omitempty"`
}

// StateCode maps a ReplicaStats.State string to its numeric gauge value
// (closed=0, open=1, half-open=2), for metrics emission.
func StateCode(state string) int {
	switch state {
	case StateOpen.String():
		return 1
	case StateHalfOpen.String():
		return 2
	default:
		return 0
	}
}

// Snapshot returns per-replica stats in listing order.
func (f *Fleet) Snapshot() []ReplicaStats {
	now := time.Now()
	f.mu.RLock()
	targets := make([]*replica, 0, len(f.urls))
	for _, url := range f.urls {
		targets = append(targets, f.reps[url])
	}
	f.mu.RUnlock()
	out := make([]ReplicaStats, 0, len(targets))
	for _, r := range targets {
		r.mu.Lock()
		r.tickRPSOnlyLocked(now.Unix())
		var n int64
		for _, b := range r.buckets {
			n += b
		}
		out = append(out, ReplicaStats{
			URL:           r.url,
			ID:            r.id,
			State:         r.state.String(),
			EWMALatencyMs: r.ewmaMs,
			Inflight:      r.inflight,
			RPS:           float64(n) / rpsBuckets,
			Requests:      r.requests,
			Errors:        r.errors,
			Trips:         r.trips,
			Incarnations:  r.incarnations,
		})
		r.mu.Unlock()
	}
	return out
}

// tickRPSOnlyLocked expires stale RPS buckets without counting a request,
// so an idle replica's rate decays to zero between snapshots.
func (r *replica) tickRPSOnlyLocked(sec int64) {
	if d := sec - r.lastSec; d > 0 {
		if d > rpsBuckets {
			d = rpsBuckets
		}
		for i := int64(0); i < d; i++ {
			r.buckets[(r.lastSec+1+i)%rpsBuckets] = 0
		}
		r.lastSec = sec
	}
}

// Trips sums breaker trips across the fleet.
func (f *Fleet) Trips() int64 {
	var n int64
	for _, r := range f.Snapshot() {
		n += r.Trips
	}
	return n
}
