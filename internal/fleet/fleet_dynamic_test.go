package fleet

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// waitFor polls pred until it holds or the deadline passes.
func waitFor(t *testing.T, pred func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !pred() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestCloseCancelsBlockedProbes pins the shutdown contract: probes descend
// from the fleet's context, so Close returns promptly even while a probe is
// blocked on a replica that accepts connections but never answers, and no
// probe goroutines leak.
func TestCloseCancelsBlockedProbes(t *testing.T) {
	// A listener that accepts and then ignores the connection: the probe's
	// HTTP request blocks until its context is cancelled.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var conns []net.Conn
	var mu sync.Mutex
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			mu.Lock()
			conns = append(conns, c)
			mu.Unlock()
		}
	}()
	defer func() {
		mu.Lock()
		for _, c := range conns {
			c.Close()
		}
		mu.Unlock()
	}()

	before := runtime.NumGoroutine()
	f := New([]string{"http://" + ln.Addr().String()}, Options{
		ProbeInterval: 5 * time.Millisecond,
		ProbeTimeout:  time.Minute, // far past the test: only Close can unblock
	})
	f.Start()
	waitFor(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(conns) > 0
	}, "a probe to block on the silent listener")

	start := time.Now()
	f.Close()
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("Close took %s with a probe blocked mid-request", d)
	}
	// Transport goroutines wind down asynchronously after the cancel; the
	// count must return to (about) the pre-fleet baseline.
	waitFor(t, func() bool { return runtime.NumGoroutine() <= before+2 },
		fmt.Sprintf("goroutines to drain (before=%d, now=%d)", before, runtime.NumGoroutine()))
}

// TestIdentityChangeResetsRecord pins restart detection: when the instance
// id in healthz changes, the replica's record resets — so a breaker opened
// against the dead instance trips *again* for the new one (without the
// reset, an open breaker never re-trips), and the incarnation counter
// records the restart.
func TestIdentityChangeResetsRecord(t *testing.T) {
	var (
		code atomic.Int32 // 200 or 503
		id   atomic.Value // string
	)
	code.Store(http.StatusOK)
	id.Store("one")
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(int(code.Load()))
		json.NewEncoder(w).Encode(map[string]any{"status": "ok", "id": id.Load()})
	}))
	t.Cleanup(backend.Close)

	f := New([]string{backend.URL}, Options{
		ProbeInterval:    5 * time.Millisecond,
		ProbeTimeout:     time.Second,
		BreakerThreshold: 2,
		BreakerCooldown:  time.Hour, // no cooldown recovery: only reset can close
	})
	f.Start()
	defer f.Close()

	snap := func() ReplicaStats { return f.Snapshot()[0] }
	waitFor(t, func() bool { s := snap(); return s.ID == "one" && s.State == "closed" },
		"identity to be observed")
	if snap().Incarnations != 0 {
		t.Fatalf("incarnations = %d before any restart", snap().Incarnations)
	}

	// The instance starts failing: breaker opens, one trip.
	code.Store(http.StatusServiceUnavailable)
	waitFor(t, func() bool { s := snap(); return s.State == "open" && s.Trips == 1 },
		"breaker to trip on instance one")

	// A new process answers on the same address — still unhealthy. The id
	// change must reset the record: the breaker closes for the newcomer,
	// then its own failures trip it afresh (a second trip, impossible
	// without the reset), and the restart is counted.
	id.Store("two")
	waitFor(t, func() bool { s := snap(); return s.Incarnations == 1 && s.Trips >= 2 },
		"restart detection to reset the breaker and re-trip")

	// The same id never resets again.
	waitFor(t, func() bool { return snap().ID == "two" }, "new id recorded")
	if snap().Incarnations != 1 {
		t.Errorf("incarnations = %d, want 1 (same id must not re-count)", snap().Incarnations)
	}

	// And when the new instance is actually healthy, probes close the
	// breaker as usual.
	code.Store(http.StatusOK)
	waitFor(t, func() bool { return snap().State == "closed" }, "healthy probes to close")
}

// TestAdoptMembersFollowsHealthzSnapshots pins coordinator-side dynamic
// membership: with AdoptMembers, a membership snapshot carried in a probed
// healthz response replaces the fleet's member set (under the epoch rules),
// and OnMembership observes the change.
func TestAdoptMembersFollowsHealthzSnapshots(t *testing.T) {
	var (
		mu      sync.Mutex
		members []string
		epoch   uint64
	)
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		defer mu.Unlock()
		json.NewEncoder(w).Encode(map[string]any{
			"status": "ok", "id": "seed", "members": members, "epoch": epoch,
		})
	}))
	t.Cleanup(backend.Close)

	var adopted atomic.Int64
	f := New([]string{backend.URL}, Options{
		ProbeInterval: 5 * time.Millisecond,
		AdoptMembers:  true,
		OnMembership:  func([]string, uint64) { adopted.Add(1) },
	})
	mu.Lock()
	members, epoch = []string{backend.URL, "http://joined:1"}, 3
	mu.Unlock()
	f.Start()
	defer f.Close()

	waitFor(t, func() bool { return len(f.Replicas()) == 2 }, "snapshot adoption")
	reps := f.Replicas()
	if reps[0] != "http://joined:1" && reps[1] != "http://joined:1" {
		t.Fatalf("Replicas = %v, want the joined member present", reps)
	}
	if got := f.Membership().Epoch(); got != 3 {
		t.Errorf("epoch = %d, want 3", got)
	}
	if adopted.Load() == 0 {
		t.Error("OnMembership never fired")
	}

	// An older snapshot must not roll the view back.
	mu.Lock()
	members, epoch = []string{backend.URL}, 1
	mu.Unlock()
	time.Sleep(30 * time.Millisecond)
	if len(f.Replicas()) != 2 {
		t.Errorf("older snapshot shrank the view to %v", f.Replicas())
	}
}
