// Package noc is an event-driven model of the on-chip network: a 2-D mesh
// with X-Y routing, pipelined routers, and link serialization/contention.
//
// The epoch-level performance model (internal/perfmodel) prices an LLC
// access at hops × HopLatency × RoundTrip — a zero-load abstraction. This
// simulator exists to validate that abstraction and to expose where it
// breaks: at low injection rates measured packet latency matches the
// analytic model plus serialization, and under heavy load queueing grows
// latency well beyond it (the ext-noc experiment quantifies both regimes).
//
// The model is deliberately simple and deterministic: each packet of F flits
// traverses its X-Y path hop by hop; at each hop the head flit waits for the
// output link to free, pays the router pipeline delay, and then occupies the
// link for F cycles (flit serialization). X-Y routing on separate queues is
// deadlock-free, so no virtual channels are modeled.
package noc

import (
	"fmt"

	"cdcs/internal/mesh"
)

// Sim is an event-driven mesh network simulator. Create with New; inject
// packets in non-decreasing time order.
type Sim struct {
	topo        *mesh.Topology
	routerDelay float64
	linkDelay   float64

	// linkFree[t][d] is the cycle at which tile t's output link in
	// direction d becomes free (directions: 0=east, 1=west, 2=north,
	// 3=south).
	linkFree [][4]float64

	packets    int64
	flitHops   int64
	totalLat   float64
	lastInject float64
}

// New builds a simulator over the topology with the given router pipeline
// and link traversal delays in cycles.
func New(topo *mesh.Topology, routerDelay, linkDelay float64) *Sim {
	if routerDelay < 0 || linkDelay <= 0 {
		panic(fmt.Sprintf("noc: invalid delays router=%g link=%g", routerDelay, linkDelay))
	}
	return &Sim{
		topo:        topo,
		routerDelay: routerDelay,
		linkDelay:   linkDelay,
		linkFree:    make([][4]float64, topo.Tiles()),
	}
}

// direction indices.
const (
	dirEast = iota
	dirWest
	dirNorth
	dirSouth
)

// Inject sends a packet of flits flits from src to dst, with the head flit
// entering the network at time t. It returns the arrival time of the tail
// flit at dst. Packets must be injected in non-decreasing t order (the
// simulator is a single-pass event model); Inject panics otherwise.
func (s *Sim) Inject(t float64, src, dst mesh.Tile, flits int) float64 {
	if t < s.lastInject {
		panic("noc: packets must be injected in time order")
	}
	s.lastInject = t
	if flits < 1 {
		flits = 1
	}
	s.packets++

	if src == dst {
		// Local delivery: router pipeline only.
		arrive := t + s.routerDelay + float64(flits-1)
		s.totalLat += arrive - t
		return arrive
	}

	x, y := s.topo.Coords(src)
	dx, dy := s.topo.Coords(dst)
	head := t
	cur := src
	// X-Y routing: all X hops, then all Y hops.
	for x != dx || y != dy {
		var dir int
		switch {
		case x < dx:
			dir = dirEast
			x++
		case x > dx:
			dir = dirWest
			x--
		case y < dy:
			dir = dirSouth
			y++
		default:
			dir = dirNorth
			y--
		}
		// Head flit: traverse the router pipeline, then wait for the output
		// link (the pipeline overlaps with queueing: a waiting packet sits
		// in the output buffer, not in front of the crossbar).
		start := head + s.routerDelay
		if free := s.linkFree[cur][dir]; free > start {
			start = free
		}
		// The link is busy until all flits have crossed it.
		s.linkFree[cur][dir] = start + float64(flits)*s.linkDelay
		head = start + s.linkDelay
		s.flitHops += int64(flits)
		cur = s.topo.TileAt(x, y)
	}
	// Tail flit trails the head by (flits-1) link cycles.
	arrive := head + float64(flits-1)*s.linkDelay
	s.totalLat += arrive - t
	return arrive
}

// ZeroLoadLatency returns the analytic uncontended latency for a packet:
// hops × (router + link) + serialization of the remaining flits.
func (s *Sim) ZeroLoadLatency(src, dst mesh.Tile, flits int) float64 {
	hops := float64(s.topo.Distance(src, dst))
	if hops == 0 {
		return s.routerDelay + float64(flits-1)
	}
	return hops*(s.routerDelay+s.linkDelay) + float64(flits-1)*s.linkDelay
}

// Packets returns the number of packets injected.
func (s *Sim) Packets() int64 { return s.packets }

// FlitHops returns total flit-link traversals (the traffic metric).
func (s *Sim) FlitHops() int64 { return s.flitHops }

// MeanLatency returns the mean packet latency so far.
func (s *Sim) MeanLatency() float64 {
	if s.packets == 0 {
		return 0
	}
	return s.totalLat / float64(s.packets)
}

// Reset clears link state and statistics.
func (s *Sim) Reset() {
	for i := range s.linkFree {
		s.linkFree[i] = [4]float64{}
	}
	s.packets, s.flitHops, s.totalLat, s.lastInject = 0, 0, 0, 0
}
