package noc

import (
	"math/rand"
	"testing"

	"cdcs/internal/mesh"
)

func newSim() *Sim {
	// Table 2: 3-cycle routers, 1-cycle links.
	return New(mesh.New(8, 8), 3, 1)
}

func TestZeroLoadSingleHop(t *testing.T) {
	s := newSim()
	topo := mesh.New(8, 8)
	src, dst := topo.TileAt(0, 0), topo.TileAt(1, 0)
	arrive := s.Inject(0, src, dst, 1)
	want := s.ZeroLoadLatency(src, dst, 1) // 1 hop × (3+1) = 4
	if arrive != want {
		t.Errorf("single-hop latency %g, want %g", arrive, want)
	}
	if want != 4 {
		t.Errorf("zero-load 1-hop = %g, want 4", want)
	}
}

func TestZeroLoadMultiHopMultiFlit(t *testing.T) {
	s := newSim()
	topo := mesh.New(8, 8)
	src, dst := topo.TileAt(0, 0), topo.TileAt(3, 2)
	// 5 hops × 4 cycles + 4 extra flit cycles = 24.
	arrive := s.Inject(0, src, dst, 5)
	if want := s.ZeroLoadLatency(src, dst, 5); arrive != want {
		t.Errorf("latency %g, want %g", arrive, want)
	}
}

func TestLocalDelivery(t *testing.T) {
	s := newSim()
	arrive := s.Inject(10, 5, 5, 4)
	if arrive != 10+3+3 {
		t.Errorf("local delivery at %g, want 16", arrive)
	}
}

func TestContentionSerializesSharedLink(t *testing.T) {
	s := newSim()
	topo := mesh.New(8, 8)
	src, dst := topo.TileAt(0, 0), topo.TileAt(1, 0)
	// Two 5-flit packets at the same instant on the same link: the second
	// waits for the first's serialization.
	a1 := s.Inject(0, src, dst, 5)
	a2 := s.Inject(0, src, dst, 5)
	if a2 <= a1 {
		t.Errorf("contended packet not delayed: %g vs %g", a2, a1)
	}
	// Delay is one packet's link occupancy (5 flit-cycles).
	if got := a2 - a1; got != 5 {
		t.Errorf("contention delay %g, want 5", got)
	}
}

func TestDisjointPathsDoNotInterfere(t *testing.T) {
	s := newSim()
	topo := mesh.New(8, 8)
	a := s.Inject(0, topo.TileAt(0, 0), topo.TileAt(1, 0), 5)
	b := s.Inject(0, topo.TileAt(0, 7), topo.TileAt(1, 7), 5)
	if a != b {
		t.Errorf("disjoint packets differ: %g vs %g", a, b)
	}
}

func TestInjectOrderEnforced(t *testing.T) {
	s := newSim()
	s.Inject(100, 0, 1, 1)
	defer func() {
		if recover() == nil {
			t.Error("out-of-order injection accepted")
		}
	}()
	s.Inject(50, 0, 1, 1)
}

func TestLatencyGrowsWithLoad(t *testing.T) {
	topo := mesh.New(8, 8)
	run := func(interval float64) float64 {
		s := New(topo, 3, 1)
		rng := rand.New(rand.NewSource(7))
		tm := 0.0
		for i := 0; i < 20000; i++ {
			src := mesh.Tile(rng.Intn(64))
			dst := mesh.Tile(rng.Intn(64))
			s.Inject(tm, src, dst, 6)
			tm += interval
		}
		return s.MeanLatency()
	}
	// Injection is chip-wide: with ~5.25 mean hops and 6 flits, the 8-link
	// bisection saturates near 1/(6×0.5/8) ≈ 2.7 packets/cycle.
	light := run(10)   // ~0.1 packets/cycle: well under saturation
	heavy := run(0.25) // ~4 packets/cycle: beyond bisection saturation
	if heavy <= light {
		t.Errorf("latency did not grow with load: %g vs %g", heavy, light)
	}
	// Light load stays close to the analytic zero-load mean:
	// mean 5.25 hops × 4 + 5 serialization ≈ 26.
	if light > 40 {
		t.Errorf("light-load latency %g too far above zero-load", light)
	}
	if heavy < 2*light {
		t.Errorf("heavy-load latency %g does not show queueing (light %g)", heavy, light)
	}
}

func TestAnalyticModelMatchesAtLowLoad(t *testing.T) {
	// The perfmodel abstraction: hops×(router+link). Validate that measured
	// low-load latency ≈ zero-load analytic for every packet.
	topo := mesh.New(8, 8)
	s := New(topo, 3, 1)
	rng := rand.New(rand.NewSource(9))
	tm := 0.0
	for i := 0; i < 5000; i++ {
		src := mesh.Tile(rng.Intn(64))
		dst := mesh.Tile(rng.Intn(64))
		arrive := s.Inject(tm, src, dst, 1)
		want := tm + s.ZeroLoadLatency(src, dst, 1)
		if arrive-want > 8 { // rare transient collisions allowed
			t.Fatalf("packet %d: latency %g, zero-load %g", i, arrive-tm, want-tm)
		}
		tm += 100
	}
}

func TestFlitHopAccounting(t *testing.T) {
	s := newSim()
	topo := mesh.New(8, 8)
	s.Inject(0, topo.TileAt(0, 0), topo.TileAt(2, 1), 5) // 3 hops × 5 flits
	if got := s.FlitHops(); got != 15 {
		t.Errorf("FlitHops=%d, want 15", got)
	}
}

func TestReset(t *testing.T) {
	s := newSim()
	s.Inject(0, 0, 5, 3)
	s.Reset()
	if s.Packets() != 0 || s.FlitHops() != 0 || s.MeanLatency() != 0 {
		t.Error("Reset did not clear stats")
	}
	// Link state cleared: a new packet at t=0 is legal and uncontended.
	if got := s.Inject(0, 0, 1, 1); got != 4 {
		t.Errorf("post-reset latency %g, want 4", got)
	}
}

func TestNewValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid delays accepted")
		}
	}()
	New(mesh.New(2, 2), 3, 0)
}

func TestDeterminism(t *testing.T) {
	run := func() float64 {
		s := newSim()
		rng := rand.New(rand.NewSource(3))
		tm := 0.0
		for i := 0; i < 3000; i++ {
			s.Inject(tm, mesh.Tile(rng.Intn(64)), mesh.Tile(rng.Intn(64)), 1+rng.Intn(5))
			tm += float64(rng.Intn(10))
		}
		return s.MeanLatency()
	}
	if run() != run() {
		t.Error("simulation not deterministic")
	}
}
