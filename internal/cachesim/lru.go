// Package cachesim provides the cache-array substrate: an exact LRU
// stack-distance simulator (ground truth for monitor validation) and a
// set-associative, partition-aware bank model in the spirit of Vantage.
//
// The epoch-level performance model (internal/perfmodel) works on analytic
// miss curves; this package exists so that monitors (internal/monitor) and
// the reconfiguration machinery can be exercised against a real array with
// real replacement behaviour.
package cachesim

// Addr is a cache-line address (block address, not byte address).
type Addr uint64

// ColdMiss is the stack distance reported for a first-touch access.
const ColdMiss = -1

// LRUStack is an exact (fully associative) LRU stack-distance simulator.
// Access returns the reuse (stack) distance of each reference, from which
// the miss curve of any cache size follows: an access with stack distance d
// hits in a fully-associative LRU cache of size > d.
type LRUStack struct {
	// stack[0] is the most recently used line.
	stack []Addr
	// pos maps address to its current depth for O(1) membership checks; the
	// depth itself may be stale and is re-resolved on access.
	pos map[Addr]bool

	// hist[d] counts accesses with stack distance d (capped).
	hist []int64
	cold int64
	n    int64
}

// NewLRUStack returns a simulator that tracks distances up to maxDist lines;
// deeper reuses are counted as cold misses (they miss in any cache of
// interest anyway).
func NewLRUStack(maxDist int) *LRUStack {
	return &LRUStack{
		pos:  make(map[Addr]bool),
		hist: make([]int64, maxDist),
	}
}

// Access references addr and returns its stack distance (ColdMiss for first
// touches or reuses beyond maxDist).
func (s *LRUStack) Access(addr Addr) int {
	s.n++
	if s.pos[addr] {
		// Find current depth by scanning: exact but O(depth). Monitor
		// validation streams are small enough for this to be fine.
		for d, a := range s.stack {
			if a == addr {
				copy(s.stack[1:d+1], s.stack[0:d])
				s.stack[0] = addr
				if d < len(s.hist) {
					s.hist[d]++
					return d
				}
				s.cold++
				return ColdMiss
			}
		}
	}
	s.pos[addr] = true
	s.stack = append(s.stack, 0)
	copy(s.stack[1:], s.stack[0:len(s.stack)-1])
	s.stack[0] = addr
	s.cold++
	return ColdMiss
}

// Accesses returns the number of references observed.
func (s *LRUStack) Accesses() int64 { return s.n }

// MissRatioAt returns the miss ratio of a fully-associative LRU cache with
// the given capacity in lines: the fraction of accesses whose stack distance
// was >= capacity (cold misses always miss).
func (s *LRUStack) MissRatioAt(capacity int) float64 {
	if s.n == 0 {
		return 0
	}
	if capacity < 0 {
		capacity = 0
	}
	var hits int64
	limit := capacity
	if limit > len(s.hist) {
		limit = len(s.hist)
	}
	for d := 0; d < limit; d++ {
		hits += s.hist[d]
	}
	return float64(s.n-hits) / float64(s.n)
}

// MissRatioCurve samples the miss ratio at the given capacities (lines).
func (s *LRUStack) MissRatioCurve(capacities []int) []float64 {
	out := make([]float64, len(capacities))
	for i, c := range capacities {
		out[i] = s.MissRatioAt(c)
	}
	return out
}
