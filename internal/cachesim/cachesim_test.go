package cachesim

import (
	"math/rand"
	"testing"
)

func TestLRUStackBasics(t *testing.T) {
	s := NewLRUStack(64)
	if d := s.Access(1); d != ColdMiss {
		t.Errorf("first touch distance = %d, want cold", d)
	}
	if d := s.Access(1); d != 0 {
		t.Errorf("immediate reuse distance = %d, want 0", d)
	}
	s.Access(2)
	s.Access(3)
	// 1 was pushed down by 2 and 3 -> distance 2.
	if d := s.Access(1); d != 2 {
		t.Errorf("distance = %d, want 2", d)
	}
}

func TestLRUStackSequence(t *testing.T) {
	// Cyclic pattern over 4 lines: after warmup, every access has distance 3.
	s := NewLRUStack(64)
	for i := 0; i < 4; i++ {
		s.Access(Addr(i))
	}
	for rep := 0; rep < 10; rep++ {
		for i := 0; i < 4; i++ {
			if d := s.Access(Addr(i)); d != 3 {
				t.Fatalf("cyclic distance = %d, want 3", d)
			}
		}
	}
	// Cache of 4+ lines: only the 4 cold misses. Cache of <=3: all miss.
	if r := s.MissRatioAt(4); r > 4.0/44+1e-9 {
		t.Errorf("miss ratio @4 = %g, want ~4/44", r)
	}
	if r := s.MissRatioAt(3); r != 1 {
		t.Errorf("miss ratio @3 = %g, want 1 (thrashing)", r)
	}
}

func TestLRUStackMissRatioMonotone(t *testing.T) {
	s := NewLRUStack(1024)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 20000; i++ {
		s.Access(Addr(rng.Intn(500)))
	}
	prev := 1.1
	for _, c := range []int{0, 16, 64, 128, 256, 512, 1024} {
		r := s.MissRatioAt(c)
		if r > prev+1e-12 {
			t.Fatalf("miss ratio increased with capacity at %d: %g > %g", c, r, prev)
		}
		prev = r
	}
	// Working set of 500 fits in 512.
	if r := s.MissRatioAt(512); r > 0.05 {
		t.Errorf("fitting working set still misses: %g", r)
	}
}

func TestLRUStackDeepReusesAreCold(t *testing.T) {
	s := NewLRUStack(4)
	for i := 0; i < 10; i++ {
		s.Access(Addr(i))
	}
	// Reuse of addr 0 has distance 9 > maxDist 4: counted cold.
	if d := s.Access(0); d != ColdMiss {
		t.Errorf("deep reuse = %d, want cold", d)
	}
}

func TestBankGeometry(t *testing.T) {
	b := NewBank(64, 16)
	if b.Sets() != 64 || b.Ways() != 16 || b.Capacity() != 1024 {
		t.Errorf("geometry wrong: %d sets %d ways", b.Sets(), b.Ways())
	}
	defer func() {
		if recover() == nil {
			t.Error("NewBank(0,1) did not panic")
		}
	}()
	NewBank(0, 1)
}

func TestBankHitMiss(t *testing.T) {
	b := NewBank(4, 2)
	if b.Access(100, 0) {
		t.Error("cold access hit")
	}
	if !b.Access(100, 0) {
		t.Error("second access missed")
	}
	if b.Hits() != 1 || b.Misses() != 1 {
		t.Errorf("counters: %d hits %d misses", b.Hits(), b.Misses())
	}
	if !b.Contains(100) {
		t.Error("Contains(100) false")
	}
	if b.Contains(101) {
		t.Error("Contains(101) true")
	}
}

func TestBankLRUWithinSet(t *testing.T) {
	b := NewBank(1, 2) // one set, 2 ways
	b.SetTarget(0, 2)
	b.Access(1, 0)
	b.Access(2, 0)
	b.Access(1, 0) // 1 is now MRU
	b.Access(3, 0) // evicts 2 (LRU)
	if !b.Contains(1) || b.Contains(2) || !b.Contains(3) {
		t.Errorf("LRU eviction wrong: 1=%v 2=%v 3=%v", b.Contains(1), b.Contains(2), b.Contains(3))
	}
}

func TestBankPartitionEnforcement(t *testing.T) {
	// Two partitions share a bank; the over-quota partition loses lines.
	b := NewBank(16, 8) // 128 lines
	b.SetTarget(1, 96)
	b.SetTarget(2, 32)
	rng := rand.New(rand.NewSource(3))
	// Both partitions stream over footprints larger than their quotas.
	for i := 0; i < 60000; i++ {
		if rng.Intn(2) == 0 {
			b.Access(Addr(rng.Intn(512)), 1)
		} else {
			b.Access(Addr(1<<20+rng.Intn(512)), 2)
		}
	}
	occ1, occ2 := b.Occupancy(1), b.Occupancy(2)
	if occ1+occ2 > b.Capacity() {
		t.Fatalf("occupancy exceeds capacity: %d+%d > %d", occ1, occ2, b.Capacity())
	}
	// Partition 1 should hold roughly 3x partition 2 (96 vs 32 quota);
	// allow generous slack for set-level interference.
	ratio := float64(occ1) / float64(occ2)
	if ratio < 1.8 || ratio > 4.5 {
		t.Errorf("partition ratio = %.2f (occ %d vs %d), want ~3", ratio, occ1, occ2)
	}
}

func TestBankZeroTargetPartitionIsEvictable(t *testing.T) {
	b := NewBank(8, 4) // 32 lines
	b.SetTarget(1, 32)
	// Partition 2 has no quota: its lines should be displaced by partition 1.
	for i := 0; i < 32; i++ {
		b.Access(Addr(i), 2)
	}
	for i := 0; i < 4096; i++ {
		b.Access(Addr(1000+i%32), 1)
	}
	if occ := b.Occupancy(2); occ > 4 {
		t.Errorf("zero-target partition still holds %d lines", occ)
	}
}

func TestBankReclassificationMovesAccounting(t *testing.T) {
	b := NewBank(4, 4)
	b.Access(42, 1)
	if b.Occupancy(1) != 1 {
		t.Fatalf("occupancy(1)=%d", b.Occupancy(1))
	}
	// Same line accessed under a different partition: accounting follows.
	b.Access(42, 2)
	if b.Occupancy(1) != 0 || b.Occupancy(2) != 1 {
		t.Errorf("reclassification: occ1=%d occ2=%d", b.Occupancy(1), b.Occupancy(2))
	}
}

func TestInvalidatePartition(t *testing.T) {
	b := NewBank(8, 4)
	for i := 0; i < 10; i++ {
		b.Access(Addr(i), 1)
	}
	for i := 100; i < 105; i++ {
		b.Access(Addr(i), 2)
	}
	if n := b.InvalidatePartition(1); n != 10 {
		t.Errorf("invalidated %d, want 10", n)
	}
	if b.Occupancy(1) != 0 {
		t.Errorf("occupancy(1)=%d after invalidation", b.Occupancy(1))
	}
	if b.Occupancy(2) != 5 {
		t.Errorf("occupancy(2)=%d, partition 2 should be untouched", b.Occupancy(2))
	}
}

func TestInvalidateAddr(t *testing.T) {
	b := NewBank(4, 2)
	b.Access(7, 0)
	if !b.InvalidateAddr(7) {
		t.Error("InvalidateAddr missed resident line")
	}
	if b.InvalidateAddr(7) {
		t.Error("InvalidateAddr hit non-resident line")
	}
	if b.Contains(7) {
		t.Error("line still resident after invalidation")
	}
}

func TestWalkSet(t *testing.T) {
	b := NewBank(2, 4)
	// Fill set 0 (even addresses) and set 1 (odd).
	for i := 0; i < 8; i++ {
		b.Access(Addr(i), PartID(i%2))
	}
	// Drop everything in set 0 belonging to partition 0.
	n := b.WalkSet(0, func(a Addr, p PartID) bool { return p != 0 })
	if n == 0 {
		t.Error("WalkSet invalidated nothing")
	}
	if got := b.WalkSet(99, func(Addr, PartID) bool { return true }); got != 0 {
		t.Errorf("out-of-range WalkSet returned %d", got)
	}
}

func TestResetStats(t *testing.T) {
	b := NewBank(4, 2)
	b.Access(1, 0)
	b.Access(1, 0)
	b.ResetStats()
	if b.Hits() != 0 || b.Misses() != 0 {
		t.Error("ResetStats did not clear counters")
	}
	if !b.Contains(1) {
		t.Error("ResetStats dropped contents")
	}
}

func TestBankOccupancyConservation(t *testing.T) {
	b := NewBank(16, 4)
	b.SetTarget(1, 30)
	b.SetTarget(2, 20)
	b.SetTarget(3, 14)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 30000; i++ {
		p := PartID(1 + rng.Intn(3))
		b.Access(Addr(int(p)<<24|rng.Intn(200)), p)
	}
	total := b.Occupancy(1) + b.Occupancy(2) + b.Occupancy(3)
	if total > b.Capacity() {
		t.Errorf("total occupancy %d exceeds capacity %d", total, b.Capacity())
	}
	if total <= 0 {
		t.Error("no lines resident after 30k accesses")
	}
}
