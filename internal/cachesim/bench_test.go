package cachesim

import (
	"math/rand"
	"testing"
)

// BenchmarkBankAccess measures the partitioned bank's per-access cost.
func BenchmarkBankAccess(b *testing.B) {
	bank := NewBank(512, 16)
	bank.SetTarget(1, 4096)
	bank.SetTarget(2, 4096)
	rng := rand.New(rand.NewSource(1))
	addrs := make([]Addr, 1<<16)
	parts := make([]PartID, 1<<16)
	for i := range addrs {
		addrs[i] = Addr(rng.Intn(16384))
		parts[i] = PartID(1 + rng.Intn(2))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := i & (1<<16 - 1)
		bank.Access(addrs[k], parts[k])
	}
}

// BenchmarkLRUStackAccess measures the exact stack-distance simulator.
func BenchmarkLRUStackAccess(b *testing.B) {
	s := NewLRUStack(8192)
	rng := rand.New(rand.NewSource(2))
	addrs := make([]Addr, 1<<14)
	for i := range addrs {
		addrs[i] = Addr(rng.Intn(4096))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Access(addrs[i&(1<<14-1)])
	}
}
