package cachesim

import (
	"fmt"
)

// PartID identifies a bank partition. Partition 0 is always valid (the
// unpartitioned default).
type PartID int

// line is one cache line's bookkeeping in a bank.
type line struct {
	tag   Addr
	part  PartID
	valid bool
	// lru is a per-set timestamp; larger is more recent.
	lru uint64
}

// Bank is a set-associative cache bank with line-granularity partitioning in
// the spirit of Vantage (§III): each line is tagged with its partition, each
// partition has a target allocation, and replacement preferentially evicts
// from partitions that exceed their targets. This enforces partition sizes
// without per-set reservations, which is the property CDCS relies on.
type Bank struct {
	sets  int
	ways  int
	lines []line // sets*ways, set-major

	clock uint64

	// target[p] is the partition's allocation in lines; occupancy[p] its
	// current size.
	target    map[PartID]int
	occupancy map[PartID]int

	// Statistics.
	hits, misses int64
	evictions    int64
}

// NewBank builds a bank with the given geometry. It panics on non-positive
// geometry: bank construction is static configuration.
func NewBank(sets, ways int) *Bank {
	if sets <= 0 || ways <= 0 {
		panic(fmt.Sprintf("cachesim: invalid bank geometry %dx%d", sets, ways))
	}
	return &Bank{
		sets:      sets,
		ways:      ways,
		lines:     make([]line, sets*ways),
		target:    map[PartID]int{},
		occupancy: map[PartID]int{},
	}
}

// Sets returns the number of sets.
func (b *Bank) Sets() int { return b.sets }

// Ways returns the associativity.
func (b *Bank) Ways() int { return b.ways }

// Capacity returns total lines.
func (b *Bank) Capacity() int { return b.sets * b.ways }

// SetTarget sets a partition's allocation in lines. Targets are advisory
// quotas: replacement drives occupancy toward them.
func (b *Bank) SetTarget(p PartID, lines int) {
	if lines < 0 {
		lines = 0
	}
	b.target[p] = lines
}

// Target returns the partition's current quota.
func (b *Bank) Target(p PartID) int { return b.target[p] }

// Occupancy returns the partition's resident line count.
func (b *Bank) Occupancy(p PartID) int { return b.occupancy[p] }

// Hits returns the hit count.
func (b *Bank) Hits() int64 { return b.hits }

// Misses returns the miss count.
func (b *Bank) Misses() int64 { return b.misses }

// Evictions returns how many valid lines were evicted.
func (b *Bank) Evictions() int64 { return b.evictions }

// setSlice returns the lines of the set holding addr.
func (b *Bank) setSlice(addr Addr) []line {
	set := int(addr) % b.sets
	if set < 0 {
		set = -set
	}
	return b.lines[set*b.ways : (set+1)*b.ways]
}

// Access looks up addr on behalf of partition p, inserting it on a miss.
// It reports whether the access hit.
func (b *Bank) Access(addr Addr, p PartID) bool {
	b.clock++
	set := b.setSlice(addr)
	for i := range set {
		if set[i].valid && set[i].tag == addr {
			b.hits++
			set[i].lru = b.clock
			// A reclassified line (page moved between VCs) migrates its
			// accounting to the accessing partition.
			if set[i].part != p {
				b.occupancy[set[i].part]--
				b.occupancy[p]++
				set[i].part = p
			}
			return true
		}
	}
	b.misses++
	b.insert(set, addr, p)
	return false
}

// Contains reports whether addr is resident (without touching LRU state).
func (b *Bank) Contains(addr Addr) bool {
	set := b.setSlice(addr)
	for i := range set {
		if set[i].valid && set[i].tag == addr {
			return true
		}
	}
	return false
}

// insert places addr into the set, choosing a victim per partition pressure:
// invalid lines first, then the LRU line of the partition most over its
// target, then global LRU as a fallback.
func (b *Bank) insert(set []line, addr Addr, p PartID) {
	victim := -1
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
	}
	if victim < 0 {
		victim = b.pickVictim(set)
		b.evictions++
		b.occupancy[set[victim].part]--
	}
	set[victim] = line{tag: addr, part: p, valid: true, lru: b.clock}
	b.occupancy[p]++
}

// pickVictim implements the Vantage-like policy. Overage is measured as
// occupancy/target ratio so small partitions are not starved by absolute
// comparisons; partitions with zero target are maximally evictable.
func (b *Bank) pickVictim(set []line) int {
	bestIdx := -1
	bestRatio := -1.0
	var bestLRU uint64
	for i := range set {
		p := set[i].part
		tgt := b.target[p]
		var ratio float64
		if tgt <= 0 {
			// No allocation: most evictable.
			ratio = 1e18
		} else {
			ratio = float64(b.occupancy[p]) / float64(tgt)
		}
		switch {
		case ratio > bestRatio+1e-12:
			bestIdx, bestRatio, bestLRU = i, ratio, set[i].lru
		case ratio > bestRatio-1e-12 && set[i].lru < bestLRU:
			bestIdx, bestLRU = i, set[i].lru
		}
	}
	return bestIdx
}

// InvalidatePartition drops all lines of partition p, returning how many
// were dropped. Used by bulk-invalidation reconfigurations.
func (b *Bank) InvalidatePartition(p PartID) int {
	n := 0
	for i := range b.lines {
		if b.lines[i].valid && b.lines[i].part == p {
			b.lines[i].valid = false
			n++
		}
	}
	b.occupancy[p] -= n
	return n
}

// InvalidateAddr drops a single line if resident, reporting whether it was.
func (b *Bank) InvalidateAddr(addr Addr) bool {
	set := b.setSlice(addr)
	for i := range set {
		if set[i].valid && set[i].tag == addr {
			b.occupancy[set[i].part]--
			set[i].valid = false
			return true
		}
	}
	return false
}

// WalkSet invalidates lines in the given set for which keep returns false,
// returning the number invalidated. Background invalidation walks the array
// one set at a time with this.
func (b *Bank) WalkSet(set int, keep func(Addr, PartID) bool) int {
	if set < 0 || set >= b.sets {
		return 0
	}
	lines := b.lines[set*b.ways : (set+1)*b.ways]
	n := 0
	for i := range lines {
		if lines[i].valid && !keep(lines[i].tag, lines[i].part) {
			b.occupancy[lines[i].part]--
			lines[i].valid = false
			n++
		}
	}
	return n
}

// ResetStats clears hit/miss/eviction counters (occupancies are preserved).
func (b *Bank) ResetStats() {
	b.hits, b.misses, b.evictions = 0, 0, 0
}
