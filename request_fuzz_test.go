package cdcs

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
)

// FuzzCompareRequestHash fuzzes the request-canonicalization path that the
// serving API's content addressing rests on. Three properties must hold for
// arbitrary input:
//
//  1. Malformed JSON errors out of Unmarshal; it never panics and never
//     reaches Hash.
//  2. Hashing is total over parsed requests: Hash either errors (invalid
//     request) or succeeds — no panics — and is deterministic.
//  3. Semantically equal documents hash equal: the canonical round trip
//     (spelled-out defaults), a key-permuted re-encoding of the same value,
//     and a second parse of the same bytes all produce the same address.
func FuzzCompareRequestHash(f *testing.F) {
	seeds := []string{
		`{"mix":{"kind":"random","seed":7,"n":16},"schemes":["S-NUCA","CDCS"],"seed":3}`,
		`{"seed":3,"schemes":["S-NUCA","CDCS"],"mix":{"n":16,"seed":7,"kind":"random"}}`,
		`{"mix":{"kind":"casestudy"}}`,
		`{"mix":{"kind":"random-mt","seed":1,"n":4},"seed":-9}`,
		`{"mix":{"kind":"apps","apps":[{"bench":"omnet","count":2},{"bench":"milc","mt":true}]}}`,
		`{"config":{"mesh_width":4,"mesh_height":4,"bank_kb":256},"mix":{"kind":"casestudy"}}`,
		`{"config":{"mesh_width":-1},"mix":{"kind":"casestudy"}}`,
		`{"mix":{"kind":"nope"}}`,
		`{"mix":{"kind":"random"}}`,
		`{"schemes":["NUCA-9000"],"mix":{"kind":"casestudy"}}`,
		`{"mix":{"kind":"apps","apps":[{"bench":"omnet","count":-3}]}}`,
		`{`,
		`null`,
		`[]`,
		`123`,
		`{"mix":{"kind":"random","seed":9007199254740993,"n":2}}`,
		"{\"mix\":{\"kind\":\"random\",\"seed\":1,\"n\":1},\"seed\":-9223372036854775808}",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var req CompareRequest
		if err := json.Unmarshal(data, &req); err != nil {
			// Malformed (or shape-mismatched) JSON: rejected, never panics.
			return
		}
		h1, err := req.Hash()
		if err != nil {
			// Invalid request: rejected. Rejection must be deterministic.
			if _, err2 := req.Hash(); err2 == nil {
				t.Fatalf("Hash() errored then succeeded for %s", data)
			}
			return
		}
		if len(h1) != 64 {
			t.Fatalf("hash %q is not a SHA-256 hex digest", h1)
		}

		// Determinism: same value, same address.
		if h2, err := req.Hash(); err != nil || h2 != h1 {
			t.Fatalf("Hash() not deterministic: %q/%v vs %q", h2, err, h1)
		}

		// Canonical round trip: defaults spelled out must not move the
		// address, and canonicalization must be idempotent.
		canon, err := req.Canonical()
		if err != nil {
			t.Fatalf("Hash() succeeded but Canonical() failed: %v", err)
		}
		if hc, err := canon.Hash(); err != nil || hc != h1 {
			t.Fatalf("canonical form hashed differently: %q/%v vs %q", hc, err, h1)
		}
		enc, err := json.Marshal(canon)
		if err != nil {
			t.Fatalf("marshal canonical: %v", err)
		}
		var rt CompareRequest
		if err := json.Unmarshal(enc, &rt); err != nil {
			t.Fatalf("canonical form does not round-trip: %v", err)
		}
		if hrt, err := rt.Hash(); err != nil || hrt != h1 {
			t.Fatalf("canonical round trip hashed differently: %q/%v vs %q", hrt, err, h1)
		}

		// Key permutation: re-encode the original document through a map
		// (Go marshals map keys sorted, almost surely a different order than
		// the input). If the permuted bytes parse back to the same value,
		// they must hash to the same address. (They may not parse back
		// identically — e.g. large ints lose precision through float64 — in
		// which case equal-hash is not required.)
		var loose any
		if err := json.Unmarshal(data, &loose); err != nil {
			return
		}
		permuted, err := json.Marshal(loose)
		if err != nil {
			return
		}
		var req2 CompareRequest
		if err := json.Unmarshal(permuted, &req2); err != nil {
			return
		}
		if !reflect.DeepEqual(req, req2) {
			return
		}
		if hp, err := req2.Hash(); err != nil || hp != h1 {
			t.Fatalf("key-permuted document hashed differently: %q/%v vs %q\noriginal: %s\npermuted: %s",
				hp, err, h1, data, permuted)
		}
	})
}

// FuzzMixSpecBuild fuzzes mix materialization: Build must reject invalid
// specs with an error (never panic), and building twice must agree.
func FuzzMixSpecBuild(f *testing.F) {
	add := func(kind string, seed int64, n int, apps string) {
		f.Add(kind, seed, n, apps)
	}
	add("random", 1, 8, "")
	add("random-mt", 2, 4, "")
	add("casestudy", 0, 0, "")
	add("apps", 0, 0, `[{"bench":"omnet","count":2}]`)
	add("apps", 0, 0, `[{"bench":"ilbdc","mt":true}]`)
	add("apps", 0, 0, `[{"bench":"nope"}]`)
	add("random", 1, -4, "")
	add("", 9, 1, "bogus")
	f.Fuzz(func(t *testing.T, kind string, seed int64, n int, apps string) {
		spec := MixSpec{Kind: kind, Seed: seed, N: n}
		if apps != "" {
			// Tolerate undecodable app lists: the spec just has no apps.
			_ = json.Unmarshal([]byte(apps), &spec.Apps)
		}
		if n > 4096 {
			return // keep mix construction cheap
		}
		m1, err1 := spec.Build()
		m2, err2 := spec.Build()
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("Build not deterministic: %v vs %v", err1, err2)
		}
		if err1 != nil {
			return
		}
		if m1.Apps() != m2.Apps() || m1.Threads() != m2.Threads() {
			t.Fatalf("Build not deterministic: %d/%d apps, %d/%d threads",
				m1.Apps(), m2.Apps(), m1.Threads(), m2.Threads())
		}
		if m1.Threads() == 0 {
			t.Fatal("Build returned a zero-thread mix without error")
		}
		// A buildable spec must hash (the serving path relies on it).
		if _, err := (CompareRequest{Mix: spec, Seed: 1}).Hash(); err != nil {
			t.Fatalf("buildable mix does not hash: %v", err)
		}
	})
}

// TestFuzzSeedsNoPanic runs the fuzz bodies over their seed corpus in plain
// `go test` runs, so the properties are exercised even where fuzzing is not.
func TestFuzzSeedsNoPanic(t *testing.T) {
	docs := [][]byte{
		[]byte(`{"mix":{"kind":"random","seed":7,"n":16},"seed":3}`),
		[]byte(`{"mix":{"kind":"nope"}}`),
		[]byte(`{`),
		[]byte(`null`),
		bytes.Repeat([]byte(`[`), 1000),
	}
	for _, d := range docs {
		var req CompareRequest
		if err := json.Unmarshal(d, &req); err != nil {
			continue
		}
		_, _ = req.Hash()
	}
}
