// Monitoring and incremental reconfiguration, end to end on the hardware
// models (§IV-G and §IV-H of the paper). This example goes below the public
// API to demonstrate the internal hardware substrate directly:
//
//  1. a GMON watches a synthetic omnet-like access stream and reconstructs
//     its miss curve (compare against the ground truth),
//  2. a virtual cache is reconfigured from one bank to another on live
//     cache arrays: demand moves keep every hot line a hit while the
//     background walk retires the old copies without pausing anything.
package main

import (
	"fmt"
	"math/rand"

	"cdcs/internal/cachesim"
	"cdcs/internal/curves"
	"cdcs/internal/monitor"
	"cdcs/internal/sim"
	"cdcs/internal/trace"
	"cdcs/internal/vtb"
	"cdcs/internal/workload"
)

func main() {
	demoGMON()
	demoDemandMoves()
}

func demoGMON() {
	fmt.Println("=== GMON: geometric miss-curve monitoring (§IV-G) ===")
	omnet := workload.ByName(workload.SPECCPU(), "omnet")
	// Scale the 32MB domain down 8x so the demo runs instantly.
	xs, ys := omnet.MissRatio.Xs(), omnet.MissRatio.Ys()
	for i := range xs {
		xs[i] /= 8
	}
	target := curves.New(xs, ys)

	gmon := monitor.NewGMON(16, 64, 128, target.MaxX())
	gen := trace.NewGenerator(target, 0, rand.New(rand.NewSource(1)))
	for i := 0; i < 400000; i++ {
		gmon.Access(gen.Next())
	}
	got := gmon.MissRatioCurve()
	fmt.Printf("gamma=%.3f, %d ways, %dB of state, sampled %d of %d accesses\n",
		gmon.Gamma(), gmon.Ways(), gmon.StateBytes(), gmon.Sampled(), gmon.Observed())
	fmt.Printf("%10s %10s %10s\n", "lines", "true", "GMON")
	for _, x := range []float64{512, 2048, 4096, 5120, 6144, 8192} {
		fmt.Printf("%10.0f %10.3f %10.3f\n", x, target.Eval(x), got.Eval(x))
	}
	fmt.Println()
}

func demoDemandMoves() {
	fmt.Println("=== Incremental reconfiguration: demand moves (§IV-H) ===")
	llc := sim.NewMoveLLC(4, 256, 16, 1)

	home0, _ := vtb.BuildDescriptor(64, map[int]float64{0: 1}, nil)
	home2, _ := vtb.BuildDescriptor(64, map[int]float64{2: 1}, nil)

	if err := llc.Install(0, home0, 4096); err != nil {
		panic(err)
	}
	for i := 0; i < 2000; i++ {
		llc.Access(0, cachesim.Addr(i))
	}
	fmt.Printf("warmed VC 0 in bank 0: %d misses (cold)\n", llc.Misses)

	if err := llc.Install(0, home2, 4096); err != nil {
		panic(err)
	}
	fmt.Println("reconfigured VC 0 to bank 2 (shadow descriptors active)")

	missesBefore := llc.Misses
	hot := 512 // re-access the hot half of the working set
	for i := 0; i < hot; i++ {
		llc.Access(0, cachesim.Addr(i))
	}
	fmt.Printf("re-accessed %d hot lines: %d demand moves, %d new memory misses\n",
		hot, llc.DemandMoves, llc.Misses-missesBefore)

	steps := 0
	for llc.BackgroundStep() {
		steps++
	}
	fmt.Printf("background walk finished in %d set-steps, invalidated %d stale lines\n",
		steps, llc.BGInvals)
	fmt.Printf("reconfiguration complete, shadows cleared: %v\n", !llc.Reconfiguring())

	// Coherence invariant held throughout.
	multi := 0
	for i := 0; i < 2000; i++ {
		if llc.Resident(cachesim.Addr(i)) > 1 {
			multi++
		}
	}
	fmt.Printf("lines resident in more than one bank: %d\n", multi)
}
