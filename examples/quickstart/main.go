// Quickstart: build the paper's 64-tile system, draw a random 64-app mix,
// and compare all five NUCA schemes on it.
package main

import (
	"fmt"
	"log"

	"cdcs"
)

func main() {
	sys := cdcs.DefaultSystem()
	fmt.Printf("system: %d cores, %d MB LLC\n\n", sys.Cores(), sys.LLCBytes()>>20)

	mix, err := cdcs.RandomMix(42, 64)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mix: %d apps, e.g. %v ...\n\n", mix.Apps(), mix.AppNames()[:4])

	cmp, err := sys.Compare(mix, 42,
		cdcs.SNUCA, cdcs.RNUCA, cdcs.JigsawC, cdcs.JigsawR, cdcs.CDCS)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-10s %10s %12s %12s %10s\n",
		"scheme", "WS", "onchip c/ki", "offchip c/ki", "pJ/instr")
	for _, s := range cdcs.Schemes() {
		r := cmp.Results[s.Name()]
		fmt.Printf("%-10s %10.3f %12.1f %12.1f %10.0f\n",
			s.Name(), cmp.WeightedSpeedup[s.Name()], r.OnChipPKI, r.OffChipPKI, r.EnergyPJPerInstr)
	}
	fmt.Printf("\nCDCS speeds this mix up %.0f%% over S-NUCA.\n",
		(cmp.WeightedSpeedup["CDCS"]-1)*100)
}
