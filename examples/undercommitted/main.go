// Under-committed systems (Fig. 13 of the paper): as fewer apps run on the
// 64-core chip, capacity becomes plentiful and Jigsaw's always-use-all-
// capacity allocation starts hurting on-chip latency. CDCS's latency-aware
// allocation keeps its advantage across the whole occupancy range.
//
// This example also demonstrates the options form of the comparison API:
// Ctrl-C cancels cleanly mid-sweep, and scheme evaluations fan out over all
// cores (results are identical for any worker count).
//
// Flags scale the run down for smoke tests (CI executes
// `undercommitted -mixes 1 -apps 1,4`):
//
//	-mixes N     mixes per occupancy point (default 10)
//	-apps list   comma-separated app counts (default 1,2,4,8,16,32,64)
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"

	"cdcs"
)

func main() {
	mixesPerPoint := flag.Int("mixes", 10, "mixes per occupancy point")
	appsList := flag.String("apps", "1,2,4,8,16,32,64", "comma-separated app counts")
	flag.Parse()
	if *mixesPerPoint < 1 {
		log.Fatal("need -mixes >= 1")
	}
	var points []int
	for _, part := range strings.Split(*appsList, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 || n > 64 {
			log.Fatalf("bad -apps entry %q (want counts in 1..64)", part)
		}
		points = append(points, n)
	}

	sys := cdcs.DefaultSystem()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	opts := cdcs.RunOptions{Context: ctx}

	fmt.Printf("%6s %10s %10s %10s %10s\n", "apps", "R-NUCA", "Jigsaw+C", "Jigsaw+R", "CDCS")
	for _, n := range points {
		sums := map[string]float64{}
		for m := 0; m < *mixesPerPoint; m++ {
			seed := int64(n*1000 + m)
			mix, err := cdcs.RandomMix(seed, n)
			if err != nil {
				log.Fatal(err)
			}
			cmp, err := sys.CompareWithOptions(mix, seed, opts,
				cdcs.SNUCA, cdcs.RNUCA, cdcs.JigsawC, cdcs.JigsawR, cdcs.CDCS)
			if errors.Is(err, context.Canceled) {
				fmt.Println("\ninterrupted")
				return
			}
			if err != nil {
				log.Fatal(err)
			}
			for name, ws := range cmp.WeightedSpeedup {
				sums[name] += ws
			}
		}
		div := float64(*mixesPerPoint)
		fmt.Printf("%6d %10.3f %10.3f %10.3f %10.3f\n", n,
			sums["R-NUCA"]/div, sums["Jigsaw+C"]/div,
			sums["Jigsaw+R"]/div, sums["CDCS"]/div)
	}
	fmt.Println("\nNote how the CDCS-vs-Jigsaw gap is widest at low occupancy,")
	fmt.Println("where latency-aware allocation leaves capacity deliberately unused.")
}
