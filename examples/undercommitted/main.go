// Under-committed systems (Fig. 13 of the paper): as fewer apps run on the
// 64-core chip, capacity becomes plentiful and Jigsaw's always-use-all-
// capacity allocation starts hurting on-chip latency. CDCS's latency-aware
// allocation keeps its advantage across the whole occupancy range.
//
// This example also demonstrates the options form of the comparison API:
// Ctrl-C cancels cleanly mid-sweep, and scheme evaluations fan out over all
// cores (results are identical for any worker count).
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"os"
	"os/signal"

	"cdcs"
)

func main() {
	sys := cdcs.DefaultSystem()
	const mixesPerPoint = 10

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	opts := cdcs.RunOptions{Context: ctx}

	fmt.Printf("%6s %10s %10s %10s %10s\n", "apps", "R-NUCA", "Jigsaw+C", "Jigsaw+R", "CDCS")
	for _, n := range []int{1, 2, 4, 8, 16, 32, 64} {
		sums := map[string]float64{}
		for m := 0; m < mixesPerPoint; m++ {
			seed := int64(n*1000 + m)
			mix, err := cdcs.RandomMix(seed, n)
			if err != nil {
				log.Fatal(err)
			}
			cmp, err := sys.CompareWithOptions(mix, seed, opts,
				cdcs.SNUCA, cdcs.RNUCA, cdcs.JigsawC, cdcs.JigsawR, cdcs.CDCS)
			if errors.Is(err, context.Canceled) {
				fmt.Println("\ninterrupted")
				return
			}
			if err != nil {
				log.Fatal(err)
			}
			for name, ws := range cmp.WeightedSpeedup {
				sums[name] += ws
			}
		}
		fmt.Printf("%6d %10.3f %10.3f %10.3f %10.3f\n", n,
			sums["R-NUCA"]/mixesPerPoint, sums["Jigsaw+C"]/mixesPerPoint,
			sums["Jigsaw+R"]/mixesPerPoint, sums["CDCS"]/mixesPerPoint)
	}
	fmt.Println("\nNote how the CDCS-vs-Jigsaw gap is widest at low occupancy,")
	fmt.Println("where latency-aware allocation leaves capacity deliberately unused.")
}
