// Case study (§II-B of the paper): a 36-tile CMP running 6×omnet, 14×milc
// and 2×8-thread ilbdc. Reproduces Table 1's per-app speedups and shows how
// CDCS places the threads (Fig. 1d): omnet instances spread apart to avoid
// capacity contention, ilbdc threads clustered around their shared data.
package main

import (
	"fmt"
	"log"
	"strings"

	"cdcs"
)

func main() {
	sys, err := cdcs.NewSystem(cdcs.Config{
		MeshWidth: 6, MeshHeight: 6, BankKB: 512,
		BankLatency: 9, HopLatency: 4, MemLatency: 120, MemChannels: 8,
	})
	if err != nil {
		log.Fatal(err)
	}
	mix := cdcs.CaseStudyMix()
	fmt.Printf("case-study mix: %d apps, %d threads on %d cores\n\n",
		mix.Apps(), mix.Threads(), sys.Cores())

	cmp, err := sys.Compare(mix, 1,
		cdcs.SNUCA, cdcs.RNUCA, cdcs.JigsawC, cdcs.JigsawR, cdcs.CDCS)
	if err != nil {
		log.Fatal(err)
	}

	// Table 1: per-app mean speedups and weighted speedup.
	names := mix.AppNames()
	base := cmp.Results["S-NUCA"]
	fmt.Printf("%-10s %8s %8s %8s %8s\n", "scheme", "omnet", "ilbdc", "milc", "WS")
	for _, s := range cdcs.Schemes() {
		r := cmp.Results[s.Name()]
		per := map[string][]float64{}
		for i, n := range names {
			bench := strings.SplitN(n, "#", 2)[0]
			per[bench] = append(per[bench], r.PerApp[i]/base.PerApp[i])
		}
		fmt.Printf("%-10s %8.2f %8.2f %8.2f %8.2f\n", s.Name(),
			mean(per["omnet"]), mean(per["ilbdc"]), mean(per["milc"]),
			cmp.WeightedSpeedup[s.Name()])
	}

	// Fig. 1d: CDCS's thread map.
	fmt.Println("\nCDCS thread placement (O=omnet, M=milc, I=ilbdc):")
	label := make([]string, sys.Cores())
	for i := range label {
		label[i] = "."
	}
	cores := cmp.Results["CDCS"].ThreadCores
	t := 0
	for i, n := range names {
		bench := strings.SplitN(n, "#", 2)[0]
		threads := 1
		if bench == "ilbdc" {
			threads = 8
		}
		for k := 0; k < threads; k++ {
			label[cores[t]] = strings.ToUpper(bench[:1])
			t++
		}
		_ = i
	}
	for y := 0; y < 6; y++ {
		fmt.Println("  " + strings.Join(label[y*6:(y+1)*6], " "))
	}
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
