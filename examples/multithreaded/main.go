// Multithreaded co-scheduling (§VI-B, Fig. 16): with multithreaded apps no
// fixed thread policy wins — clustering helps shared-heavy apps, spreading
// helps private-heavy ones. CDCS chooses per process: this example runs the
// paper's mgrid/md/ilbdc/nab case study and prints each process's thread
// spread under CDCS, plus the factor analysis of the CDCS techniques.
package main

import (
	"fmt"
	"log"

	"cdcs"
)

func main() {
	sys := cdcs.DefaultSystem()

	mix := cdcs.NewMix()
	for _, bench := range []string{"mgrid", "md", "ilbdc", "nab"} {
		if err := mix.AddMT(bench, 1); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("mix: %d processes, %d threads on %d cores\n\n",
		mix.Apps(), mix.Threads(), sys.Cores())

	cmp, err := sys.Compare(mix, 5, cdcs.SNUCA, cdcs.JigsawC, cdcs.JigsawR, cdcs.CDCS)
	if err != nil {
		log.Fatal(err)
	}
	for _, name := range []string{"Jigsaw+C", "Jigsaw+R", "CDCS"} {
		fmt.Printf("%-10s weighted speedup %.3f\n", name, cmp.WeightedSpeedup[name])
	}

	// Per-process thread spread under CDCS: mgrid (private-heavy) spreads,
	// the shared-heavy processes cluster.
	fmt.Println("\nCDCS per-process mean pairwise thread distance (hops):")
	cores := cmp.Results["CDCS"].ThreadCores
	names := mix.AppNames()
	for p, name := range names {
		ids := make([]int, 8)
		for k := range ids {
			ids[k] = p*8 + k
		}
		fmt.Printf("  %-10s %.2f\n", name, meanPairwise(cores, ids))
	}

	// Factor analysis on this mix: which CDCS technique matters here?
	fmt.Println("\nfactor analysis (vs S-NUCA):")
	variants := []cdcs.Scheme{
		cdcs.CDCSVariant(false, false, false),
		cdcs.CDCSVariant(true, false, false),
		cdcs.CDCSVariant(false, true, false),
		cdcs.CDCSVariant(false, false, true),
		cdcs.CDCSVariant(true, true, true),
	}
	args := append([]cdcs.Scheme{cdcs.SNUCA}, variants...)
	fa, err := sys.Compare(mix, 5, args...)
	if err != nil {
		log.Fatal(err)
	}
	for _, v := range variants {
		fmt.Printf("  %-12s WS %.3f\n", v.Name(), fa.WeightedSpeedup[v.Name()])
	}
}

// meanPairwise averages Manhattan distances between cores on the 8x8 mesh.
func meanPairwise(cores []int, ids []int) float64 {
	sum, n := 0.0, 0
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			a, b := cores[ids[i]], cores[ids[j]]
			ax, ay := a%8, a/8
			bx, by := b%8, b/8
			sum += float64(abs(ax-bx) + abs(ay-by))
			n++
		}
	}
	return sum / float64(n)
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
