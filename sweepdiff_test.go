package cdcs

import (
	"encoding/json"
	"testing"
)

// diffBaseSweep is a tiny grid used by the diff tests: 2 hop latencies on a
// 4x4 chip, one mix, two schemes.
func diffBaseSweep(t *testing.T, hops []float64) *SweepResult {
	t.Helper()
	res, err := Sweep(SweepRequest{
		Mesh:       []MeshSize{{Width: 4, Height: 4}},
		HopLatency: hops,
		Mixes:      []MixSpec{{Kind: MixRandom, Seed: 9, N: 4}},
		Schemes:    []string{"S-NUCA", "CDCS"},
		Seed:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestDiffSweepsIdenticalRuns(t *testing.T) {
	a := diffBaseSweep(t, []float64{2, 4})
	b := diffBaseSweep(t, []float64{2, 4})
	d, err := DiffSweeps(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Identical() {
		t.Errorf("identical runs diff as different: %+v", d)
	}
	if len(d.Common) != 2 || len(d.OnlyA) != 0 || len(d.OnlyB) != 0 {
		t.Errorf("common=%d onlyA=%d onlyB=%d", len(d.Common), len(d.OnlyA), len(d.OnlyB))
	}
	for _, s := range d.Schemes {
		if d.MeanWSDelta[s] != 0 || d.MaxAbsWSDelta[s] != 0 {
			t.Errorf("scheme %s aggregates nonzero on identical runs", s)
		}
	}
}

func TestDiffSweepsAlignsByHashNotPosition(t *testing.T) {
	a := diffBaseSweep(t, []float64{2, 4})
	// B evaluates the same two cells at different grid positions (an axis
	// value prepended) plus one new cell.
	b := diffBaseSweep(t, []float64{1, 2, 4})
	d, err := DiffSweeps(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Common) != 2 {
		t.Fatalf("common = %d, want 2", len(d.Common))
	}
	for _, c := range d.Common {
		if c.IndexA == c.IndexB {
			t.Errorf("cell %.12s kept the same index although the grid shifted", c.Hash)
		}
		for s, v := range c.WSDelta {
			if v != 0 {
				t.Errorf("cell %.12s scheme %s delta = %g, want 0 (same computation)", c.Hash, s, v)
			}
		}
	}
	if len(d.OnlyA) != 0 {
		t.Errorf("onlyA = %d, want 0", len(d.OnlyA))
	}
	if len(d.OnlyB) != 1 || d.OnlyB[0].Request.Config.HopLatency != 1 {
		t.Errorf("onlyB = %+v, want the hop-1 cell", d.OnlyB)
	}
	if d.Identical() {
		t.Error("diff with an unmatched cell claims identical")
	}
}

func TestDiffSweepsReportsDeltas(t *testing.T) {
	a := diffBaseSweep(t, []float64{2})
	b := diffBaseSweep(t, []float64{2})
	// Simulate a code revision that improved CDCS on the cell.
	b.Cells[0].Comparison.WeightedSpeedup["CDCS"] += 0.25
	d, err := DiffSweeps(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Common[0].WSDelta["CDCS"]; got != 0.25 {
		t.Errorf("CDCS delta = %g, want 0.25", got)
	}
	if got := d.Common[0].WSDelta["S-NUCA"]; got != 0 {
		t.Errorf("S-NUCA delta = %g, want 0", got)
	}
	if d.MeanWSDelta["CDCS"] != 0.25 || d.MaxAbsWSDelta["CDCS"] != 0.25 {
		t.Errorf("aggregates = %+v / %+v", d.MeanWSDelta, d.MaxAbsWSDelta)
	}
	if d.Identical() {
		t.Error("nonzero delta claims identical")
	}
}

func TestDiffSweepsSchemeIntersection(t *testing.T) {
	a := diffBaseSweep(t, []float64{2})
	var b SweepResult
	raw, _ := json.Marshal(a)
	if err := json.Unmarshal(raw, &b); err != nil {
		t.Fatal(err)
	}
	b.Request.Schemes = []string{"CDCS", "Jigsaw+R"}
	d, err := DiffSweeps(a, &b)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Schemes) != 1 || d.Schemes[0] != "CDCS" {
		t.Errorf("schemes = %v, want [CDCS]", d.Schemes)
	}

	b.Request.Schemes = []string{"R-NUCA"}
	if _, err := DiffSweeps(a, &b); err == nil {
		t.Error("disjoint scheme sets accepted")
	}
}
