package cdcs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"
)

func TestSweepCanonicalDefaults(t *testing.T) {
	c, err := SweepRequest{Mixes: []MixSpec{{Kind: MixCaseStudy}}}.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	def := DefaultConfig()
	if len(c.Mesh) != 1 || c.Mesh[0] != (MeshSize{Width: def.MeshWidth, Height: def.MeshHeight}) {
		t.Errorf("mesh axis defaulted to %v", c.Mesh)
	}
	if len(c.BankKB) != 1 || c.BankKB[0] != def.BankKB {
		t.Errorf("bank axis defaulted to %v", c.BankKB)
	}
	if len(c.Schemes) != 5 {
		t.Errorf("schemes defaulted to %v", c.Schemes)
	}
	if c.NumCells() != 1 {
		t.Errorf("default grid has %d cells, want 1", c.NumCells())
	}
}

func TestSweepValidation(t *testing.T) {
	for name, req := range map[string]SweepRequest{
		"no mixes":       {},
		"bad mesh":       {Mesh: []MeshSize{{0, 4}}, Mixes: []MixSpec{{Kind: MixCaseStudy}}},
		"oversize mesh":  {Mesh: []MeshSize{{129, 128}}, Mixes: []MixSpec{{Kind: MixCaseStudy}}},
		"bad bank":       {BankKB: []int{0}, Mixes: []MixSpec{{Kind: MixCaseStudy}}},
		"bad latency":    {HopLatency: []float64{-1}, Mixes: []MixSpec{{Kind: MixCaseStudy}}},
		"bad mix":        {Mixes: []MixSpec{{Kind: "nope"}}},
		"unknown scheme": {Mixes: []MixSpec{{Kind: MixCaseStudy}}, Schemes: []string{"NUCA-9000"}},
	} {
		if _, err := req.Canonical(); err == nil {
			t.Errorf("%s: Canonical() accepted an invalid sweep", name)
		}
	}
	// The cell cap: 17 values on three axes and 2 mixes exceeds MaxSweepCells.
	big := SweepRequest{
		BankKB:      make([]int, 17),
		HopLatency:  make([]float64, 17),
		MemChannels: make([]int, 17),
		Mixes:       []MixSpec{{Kind: MixCaseStudy}, {Kind: MixRandom, Seed: 1, N: 4}},
	}
	for i := range big.BankKB {
		big.BankKB[i] = 128 + i
		big.HopLatency[i] = float64(1 + i)
		big.MemChannels[i] = 1 + i
	}
	if _, err := big.Canonical(); err == nil || !strings.Contains(err.Error(), "cells") {
		t.Errorf("oversized grid: err=%v", err)
	}
}

func TestSweepCellCapSurvivesOverflow(t *testing.T) {
	// Four 65536-element axes make the naive cell product wrap int64 to 0;
	// the cap must still reject the grid (this shape fits a sub-1MB JSON
	// body, so it is remotely reachable through POST /v1/sweep).
	huge := SweepRequest{Mixes: []MixSpec{{Kind: MixCaseStudy}}}
	huge.Mesh = []MeshSize{{Width: 8, Height: 8}}
	huge.MemChannels = []int{8}
	huge.BankKB = make([]int, 65536)
	huge.BankLatency = make([]float64, 65536)
	huge.HopLatency = make([]float64, 65536)
	huge.MemLatency = make([]float64, 65536)
	for i := 0; i < 65536; i++ {
		huge.BankKB[i] = 512
		huge.BankLatency[i] = 9
		huge.HopLatency[i] = 4
		huge.MemLatency[i] = 120
	}
	if n := huge.NumCells(); n <= MaxSweepCells {
		t.Fatalf("NumCells()=%d under the cap for a 65536^4-cell grid", n)
	}
	if _, err := huge.Canonical(); err == nil || !strings.Contains(err.Error(), "cells") {
		t.Errorf("overflowing grid accepted: err=%v", err)
	}
	if _, err := huge.Cells(); err == nil {
		t.Error("Cells() expanded an overflowing grid")
	}
}

func TestSweepHashStableAcrossSpelledDefaults(t *testing.T) {
	a, err := SweepRequest{Mixes: []MixSpec{{Kind: MixCaseStudy}}, Seed: 3}.Hash()
	if err != nil {
		t.Fatal(err)
	}
	def := DefaultConfig()
	b, err := SweepRequest{
		Mesh:        []MeshSize{{def.MeshWidth, def.MeshHeight}},
		BankKB:      []int{def.BankKB},
		BankLatency: []float64{def.BankLatency},
		HopLatency:  []float64{def.HopLatency},
		MemLatency:  []float64{def.MemLatency},
		MemChannels: []int{def.MemChannels},
		Mixes:       []MixSpec{{Kind: MixCaseStudy}},
		Schemes:     SchemeNames(),
		Seed:        3,
	}.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("spelled-out default axes changed the sweep hash")
	}
	c, err := SweepRequest{Mixes: []MixSpec{{Kind: MixCaseStudy}}, Seed: 3, HopLatency: []float64{4, 5}}.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Error("extra axis value did not change the sweep hash")
	}
}

func TestSweepCellsExpansionOrder(t *testing.T) {
	req := SweepRequest{
		Mesh:       []MeshSize{{4, 4}, {6, 6}},
		HopLatency: []float64{2, 4},
		Mixes:      []MixSpec{{Kind: MixRandom, Seed: 1, N: 4}, {Kind: MixCaseStudy}},
		Schemes:    []string{"S-NUCA", "CDCS"},
		Seed:       9,
	}
	cells, err := req.Cells()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 8 {
		t.Fatalf("%d cells, want 8", len(cells))
	}
	// Mix is the innermost axis, mesh the outermost.
	if cells[0].Request.Mix.Kind != MixRandom || cells[1].Request.Mix.Kind != MixCaseStudy {
		t.Error("mix is not the innermost axis")
	}
	if cells[0].Request.Config.MeshWidth != 4 || cells[7].Request.Config.MeshWidth != 6 {
		t.Error("mesh is not the outermost axis")
	}
	if cells[0].Request.Config.HopLatency != 2 || cells[2].Request.Config.HopLatency != 4 {
		t.Error("hop latency axis out of order")
	}
	seen := map[string]bool{}
	for i, c := range cells {
		if c.Index != i {
			t.Errorf("cell %d has index %d", i, c.Index)
		}
		if c.Request.Seed != 9 {
			t.Errorf("cell %d seed %d, want 9", i, c.Request.Seed)
		}
		if seen[c.Hash] {
			t.Errorf("duplicate cell hash %s", c.Hash)
		}
		seen[c.Hash] = true
	}
}

func TestSweepCellsMatchStandaloneCompare(t *testing.T) {
	// The acceptance gate: every sweep cell's result must be byte-identical
	// to the equivalent standalone Compare call — over a 3-axis grid that
	// includes a 32×32 (1024-tile, pruned-placement) cell.
	req := SweepRequest{
		Mesh:       []MeshSize{{8, 8}, {32, 32}},
		BankKB:     []int{256, 512},
		HopLatency: []float64{4, 6},
		Mixes:      []MixSpec{{Kind: MixRandom, Seed: 11, N: 16}},
		Schemes:    []string{"S-NUCA", "CDCS"},
		Seed:       5,
	}
	res, err := SweepWithOptions(req, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 8 {
		t.Fatalf("%d cells, want 8", len(res.Cells))
	}
	saw1024 := false
	for _, cell := range res.Cells {
		cfg := cell.Request.Config
		if cfg.MeshWidth == 32 {
			saw1024 = true
		}
		standalone, err := cell.Request.Run(RunOptions{})
		if err != nil {
			t.Fatalf("cell %d standalone: %v", cell.Index, err)
		}
		got, _ := json.Marshal(cell.Comparison)
		want, _ := json.Marshal(standalone)
		if string(got) != string(want) {
			t.Errorf("cell %d (%dx%d bank %dKB hop %g) diverged from standalone Compare",
				cell.Index, cfg.MeshWidth, cfg.MeshHeight, cfg.BankKB, cfg.HopLatency)
		}
	}
	if !saw1024 {
		t.Error("grid never reached the 32x32 cell")
	}
	// And against the direct library path, for one cell.
	cell := res.Cells[0]
	sys, err := NewSystem(*cell.Request.Config)
	if err != nil {
		t.Fatal(err)
	}
	mix, err := cell.Request.Mix.Build()
	if err != nil {
		t.Fatal(err)
	}
	direct, err := sys.Compare(mix, cell.Request.Seed, SNUCA, CDCS)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := json.Marshal(cell.Comparison)
	want, _ := json.Marshal(direct)
	if string(got) != string(want) {
		t.Error("sweep cell diverged from direct System.Compare")
	}
}

func TestSweep64x64Cell(t *testing.T) {
	// The kilo-tile frontier: a 64×64 (4096-tile, stride-4 lattice) cell
	// must run under the raised MaxSweepTiles cap and stay byte-identical
	// to the standalone Compare path.
	if testing.Short() {
		t.Skip("64x64 sweep cell is slow")
	}
	req := SweepRequest{
		Mesh:    []MeshSize{{64, 64}},
		Mixes:   []MixSpec{{Kind: MixRandom, Seed: 13, N: 64}},
		Schemes: []string{"S-NUCA", "CDCS"},
		Seed:    5,
	}
	res, err := SweepWithOptions(req, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 1 {
		t.Fatalf("%d cells, want 1", len(res.Cells))
	}
	cell := res.Cells[0]
	if cell.Request.Config.MeshWidth != 64 || cell.Request.Config.MeshHeight != 64 {
		t.Fatalf("cell is %dx%d, want 64x64", cell.Request.Config.MeshWidth, cell.Request.Config.MeshHeight)
	}
	standalone, err := cell.Request.Run(RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, _ := json.Marshal(cell.Comparison)
	want, _ := json.Marshal(standalone)
	if string(got) != string(want) {
		t.Error("64x64 cell diverged from standalone Compare")
	}
	ws := cell.Comparison.WeightedSpeedup["CDCS"]
	if ws <= 0 {
		t.Errorf("CDCS weighted speedup %g on the 64x64 cell", ws)
	}
}

func TestSweep128x128Cell(t *testing.T) {
	// The hierarchical frontier: a 128×128 (16,384-tile) cell runs over a
	// lazy mesh with the two-level placement path, and must stay
	// byte-identical to the standalone Compare path.
	if testing.Short() {
		t.Skip("128x128 sweep cell is slow")
	}
	req := SweepRequest{
		Mesh:    []MeshSize{{128, 128}},
		Mixes:   []MixSpec{{Kind: MixRandom, Seed: 13, N: 128}},
		Schemes: []string{"S-NUCA", "CDCS"},
		Seed:    5,
	}
	res, err := SweepWithOptions(req, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 1 {
		t.Fatalf("%d cells, want 1", len(res.Cells))
	}
	cell := res.Cells[0]
	if cell.Request.Config.MeshWidth != 128 || cell.Request.Config.MeshHeight != 128 {
		t.Fatalf("cell is %dx%d, want 128x128", cell.Request.Config.MeshWidth, cell.Request.Config.MeshHeight)
	}
	standalone, err := cell.Request.Run(RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, _ := json.Marshal(cell.Comparison)
	want, _ := json.Marshal(standalone)
	if string(got) != string(want) {
		t.Error("128x128 cell diverged from standalone Compare")
	}
	ws := cell.Comparison.WeightedSpeedup["CDCS"]
	if ws <= 0 {
		t.Errorf("CDCS weighted speedup %g on the 128x128 cell", ws)
	}
}

// TestSweepTileCapBoundary pins the mesh cap at exactly MaxSweepTiles: a
// 128×128 mesh (16,384 tiles, = the cap) passes validation and a
// 5×3277 mesh (16,385 tiles, one over) fails with a message carrying the
// cap (derived from the constant, not hard-coded text).
func TestSweepTileCapBoundary(t *testing.T) {
	mixes := []MixSpec{{Kind: MixRandom, Seed: 1, N: 4}}
	if _, err := (SweepRequest{Mesh: []MeshSize{{128, 128}}, Mixes: mixes}).Canonical(); err != nil {
		t.Fatalf("128x128 (= MaxSweepTiles) rejected: %v", err)
	}
	if 5*3277 != MaxSweepTiles+1 {
		t.Fatalf("boundary mesh is stale: 5*3277 != MaxSweepTiles+1 = %d", MaxSweepTiles+1)
	}
	_, err := (SweepRequest{Mesh: []MeshSize{{5, 3277}}, Mixes: mixes}).Canonical()
	if err == nil {
		t.Fatal("5x3277 (= MaxSweepTiles+1) accepted")
	}
	if want := fmt.Sprintf("%d tiles", MaxSweepTiles); !strings.Contains(err.Error(), want) {
		t.Errorf("cap error %q does not carry the derived limit %q", err, want)
	}
}

func TestSweepDeterministicAcrossParallelism(t *testing.T) {
	req := SweepRequest{
		Mesh:    []MeshSize{{4, 4}, {6, 6}},
		Mixes:   []MixSpec{{Kind: MixRandom, Seed: 2, N: 8}},
		Schemes: []string{"S-NUCA", "CDCS"},
		Seed:    1,
	}
	seq, err := SweepWithOptions(req, RunOptions{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := SweepWithOptions(req, RunOptions{Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Error("sweep results differ across parallelism")
	}
}

func TestSweepProgressAndCancel(t *testing.T) {
	req := SweepRequest{
		Mesh:    []MeshSize{{4, 4}},
		Mixes:   []MixSpec{{Kind: MixRandom, Seed: 1, N: 4}, {Kind: MixRandom, Seed: 2, N: 4}},
		Schemes: []string{"S-NUCA"},
	}
	var last, total int
	if _, err := SweepWithOptions(req, RunOptions{
		Progress: func(d, n int) { last, total = d, n },
	}); err != nil {
		t.Fatal(err)
	}
	if total != 2 || last != total {
		t.Errorf("progress ended at %d/%d, want 2/2", last, total)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := SweepWithOptions(req, RunOptions{Context: ctx}); !errors.Is(err, context.Canceled) {
		t.Errorf("canceled sweep: err=%v", err)
	}
}
