package cdcs

// Config-grid sweeps: a SweepRequest describes a grid of machine
// configurations (axes over Config fields) crossed with a set of workload
// mixes, and expands into cells — one CompareRequest per (config, mix)
// combination. Cells are plain Compare calls: a sweep cell's result is
// byte-identical to the equivalent standalone CompareRequest.Run, so the
// serving layer can cache sweeps cell-by-cell in the same content-addressed
// namespace as /v1/compare, and a sweep that overlaps a prior sweep (or
// prior individual compares) only simulates the cells it hasn't seen.

import (
	"fmt"
	"runtime"

	"cdcs/internal/sim"
)

// MaxSweepTiles caps the mesh axis: no sweep cell may model more than a
// 128×128 chip. Up to 4096 tiles the flat placement pipeline runs (pruned
// candidate lattice, arena hot path); above that, placement switches to the
// hierarchical two-level path over the mesh's cluster view and the topology
// itself goes lazy (no O(tiles²) precomputation), so even 16,384-tile cells
// complete in interactive time.
const MaxSweepTiles = 16384

// MaxSweepCells caps a sweep's expanded grid so a mistyped axis cannot
// request millions of simulations.
const MaxSweepCells = 4096

// MeshSize is one value of a sweep's mesh axis.
type MeshSize struct {
	Width  int `json:"width"`
	Height int `json:"height"`
}

// SweepRequest is the canonical form of a config-grid sweep: the cartesian
// product of the config axes, crossed with every mix, evaluated under one
// scheme set and seed. Empty config axes default to the corresponding
// DefaultConfig value, so the zero grid is the paper's 64-tile chip. It
// round-trips through JSON, and Hash gives its content address.
type SweepRequest struct {
	// Mesh, BankKB, BankLatency, HopLatency, MemLatency, MemChannels are the
	// machine axes (see Config for field semantics). A latency value of 0
	// keeps the model default, as in Config.
	Mesh        []MeshSize `json:"mesh,omitempty"`
	BankKB      []int      `json:"bank_kb,omitempty"`
	BankLatency []float64  `json:"bank_latency,omitempty"`
	HopLatency  []float64  `json:"hop_latency,omitempty"`
	MemLatency  []float64  `json:"mem_latency,omitempty"`
	MemChannels []int      `json:"mem_channels,omitempty"`
	// Mixes is the workload axis; every mix runs on every config (at least
	// one required).
	Mixes []MixSpec `json:"mixes"`
	// Schemes lists scheme names evaluated per cell; the first is the
	// baseline. Empty means all five standard schemes.
	Schemes []string `json:"schemes,omitempty"`
	// Seed seeds every cell: a cell is exactly the standalone
	// CompareRequest{Config, Mix, Schemes, Seed} (scheme i runs with Seed+i,
	// as in CompareWithOptions). Seeding is per cell and content-derived —
	// never positional — so growing an axis re-simulates only the new cells.
	Seed int64 `json:"seed"`
}

// Canonical validates the request and fills defaults (single-valued axes from
// DefaultConfig, the standard scheme list), so requests differing only in how
// defaults were spelled hash identically.
func (r SweepRequest) Canonical() (SweepRequest, error) {
	def := DefaultConfig()
	if len(r.Mesh) == 0 {
		r.Mesh = []MeshSize{{Width: def.MeshWidth, Height: def.MeshHeight}}
	} else {
		r.Mesh = append([]MeshSize(nil), r.Mesh...)
	}
	for _, m := range r.Mesh {
		if m.Width < 1 || m.Height < 1 {
			return r, fmt.Errorf("cdcs: sweep mesh %dx%d invalid", m.Width, m.Height)
		}
		if m.Width*m.Height > MaxSweepTiles {
			return r, fmt.Errorf("cdcs: sweep mesh %dx%d exceeds %d tiles", m.Width, m.Height, MaxSweepTiles)
		}
	}
	if len(r.BankKB) == 0 {
		r.BankKB = []int{def.BankKB}
	} else {
		r.BankKB = append([]int(nil), r.BankKB...)
	}
	for _, kb := range r.BankKB {
		if kb <= 0 {
			return r, fmt.Errorf("cdcs: sweep bank size %dKB invalid", kb)
		}
	}
	fill := func(axis []float64, def float64, name string) ([]float64, error) {
		if len(axis) == 0 {
			return []float64{def}, nil
		}
		axis = append([]float64(nil), axis...)
		for _, v := range axis {
			if v < 0 {
				return nil, fmt.Errorf("cdcs: sweep %s %g invalid", name, v)
			}
		}
		return axis, nil
	}
	var err error
	if r.BankLatency, err = fill(r.BankLatency, def.BankLatency, "bank latency"); err != nil {
		return r, err
	}
	if r.HopLatency, err = fill(r.HopLatency, def.HopLatency, "hop latency"); err != nil {
		return r, err
	}
	if r.MemLatency, err = fill(r.MemLatency, def.MemLatency, "mem latency"); err != nil {
		return r, err
	}
	if len(r.MemChannels) == 0 {
		r.MemChannels = []int{def.MemChannels}
	} else {
		r.MemChannels = append([]int(nil), r.MemChannels...)
	}
	for _, ch := range r.MemChannels {
		if ch < 0 {
			return r, fmt.Errorf("cdcs: sweep mem channels %d invalid", ch)
		}
	}
	if len(r.Mixes) == 0 {
		return r, fmt.Errorf("cdcs: sweep needs at least one mix")
	}
	mixes := make([]MixSpec, len(r.Mixes))
	for i, m := range r.Mixes {
		nm, err := m.normalize()
		if err != nil {
			return r, fmt.Errorf("cdcs: sweep mix %d: %w", i, err)
		}
		mixes[i] = nm
	}
	r.Mixes = mixes
	if len(r.Schemes) == 0 {
		r.Schemes = SchemeNames()
	} else {
		r.Schemes = append([]string(nil), r.Schemes...)
		for _, name := range r.Schemes {
			if _, ok := SchemeByName(name); !ok {
				return r, fmt.Errorf("cdcs: unknown scheme %q (known: %v)", name, SchemeNames())
			}
		}
	}
	if n := r.NumCells(); n > MaxSweepCells {
		return r, fmt.Errorf("cdcs: sweep expands to %d cells (max %d)", n, MaxSweepCells)
	}
	return r, nil
}

// NumCells returns the size of the expanded grid: the product of the config
// axes times the mix count. The running product stops multiplying once it
// exceeds MaxSweepCells, so a crafted request with huge axes cannot wrap the
// product past the cap (the returned value is then merely "over the cap",
// not the true count — Canonical rejects such grids, so canonical requests
// always get the exact count). A request with empty axes counts zero cells.
func (r SweepRequest) NumCells() int {
	n := 1
	for _, k := range []int{
		len(r.Mesh), len(r.BankKB), len(r.BankLatency), len(r.HopLatency),
		len(r.MemLatency), len(r.MemChannels), len(r.Mixes),
	} {
		if k == 0 {
			return 0
		}
		n *= k
		if n > MaxSweepCells {
			return n
		}
	}
	return n
}

// Hash returns the sweep's content address (see CompareRequest.Hash).
// Individual cells are addressed by their own CompareRequest hashes; the
// sweep hash covers the whole grid in axis order.
func (r SweepRequest) Hash() (string, error) {
	c, err := r.Canonical()
	if err != nil {
		return "", err
	}
	return hashJSON("sweep/v1", c)
}

// SweepCell is one expanded grid point: a standalone CompareRequest plus its
// content address and position in the grid.
type SweepCell struct {
	// Index is the cell's position in the expanded grid (mesh outermost,
	// then bank KB, bank/hop/mem latency, mem channels, mix innermost).
	Index int `json:"index"`
	// Request is the equivalent standalone compare call.
	Request CompareRequest `json:"request"`
	// Hash is Request.Hash(): the cell's content address, shared with
	// /v1/compare's cache namespace.
	Hash string `json:"hash"`
}

// Cells canonicalizes the request and expands the grid in deterministic
// order. Every cell's Request is already canonical.
func (r SweepRequest) Cells() ([]SweepCell, error) {
	c, err := r.Canonical()
	if err != nil {
		return nil, err
	}
	cells := make([]SweepCell, 0, c.NumCells())
	for _, m := range c.Mesh {
		for _, kb := range c.BankKB {
			for _, bl := range c.BankLatency {
				for _, hl := range c.HopLatency {
					for _, ml := range c.MemLatency {
						for _, ch := range c.MemChannels {
							for _, mix := range c.Mixes {
								cfg := Config{
									MeshWidth: m.Width, MeshHeight: m.Height,
									BankKB:      kb,
									BankLatency: bl,
									HopLatency:  hl,
									MemLatency:  ml,
									MemChannels: ch,
								}
								req := CompareRequest{Config: &cfg, Mix: mix, Schemes: c.Schemes, Seed: c.Seed}
								canon, err := req.Canonical()
								if err != nil {
									return nil, fmt.Errorf("cdcs: sweep cell %d: %w", len(cells), err)
								}
								hash, err := canon.Hash()
								if err != nil {
									return nil, fmt.Errorf("cdcs: sweep cell %d: %w", len(cells), err)
								}
								cells = append(cells, SweepCell{Index: len(cells), Request: canon, Hash: hash})
							}
						}
					}
				}
			}
		}
	}
	return cells, nil
}

// SweepCellResult is one evaluated cell.
type SweepCellResult struct {
	SweepCell
	Comparison *Comparison `json:"comparison"`
}

// SweepResult is a fully evaluated sweep: the canonical request plus every
// cell's comparison, in grid order.
type SweepResult struct {
	Request SweepRequest      `json:"request"`
	Cells   []SweepCellResult `json:"cells"`
}

// Sweep expands and evaluates a config-grid sweep with default RunOptions.
// Cells fan out over the worker pool; results are bit-identical for any
// worker count and each cell is byte-identical to the standalone Compare.
func Sweep(req SweepRequest) (*SweepResult, error) {
	return SweepWithOptions(req, RunOptions{})
}

// SweepWithOptions is Sweep with explicit execution options. Progress is
// reported at cell granularity: (cells done, total cells).
func SweepWithOptions(req SweepRequest, opts RunOptions) (*SweepResult, error) {
	canon, err := req.Canonical()
	if err != nil {
		return nil, err
	}
	cells, err := canon.Cells()
	if err != nil {
		return nil, err
	}
	// Split the worker budget: cells fan out on the outer pool and each
	// cell's schemes share what's left, so a single-cell sweep still uses
	// every worker while a wide grid parallelizes across cells. Any split
	// yields identical results (see sim.Engine).
	workers := opts.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	outer := workers
	if outer > len(cells) {
		outer = len(cells)
	}
	inner := 1
	if outer > 0 {
		inner = workers / outer
		if inner < 1 {
			inner = 1
		}
	}
	out := &SweepResult{Request: canon, Cells: make([]SweepCellResult, len(cells))}
	eng := sim.Engine{Parallelism: workers, Ctx: opts.Context, OnProgress: opts.Progress}
	if err := eng.ForEach(len(cells), func(i int) error {
		cmp, err := cells[i].Request.Run(RunOptions{Parallelism: inner, Context: opts.Context})
		if err != nil {
			return fmt.Errorf("cdcs: sweep cell %d: %w", i, err)
		}
		out.Cells[i] = SweepCellResult{SweepCell: cells[i], Comparison: cmp}
		return nil
	}); err != nil {
		return nil, err
	}
	return out, nil
}
