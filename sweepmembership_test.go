package cdcs_test

// Churn chaos tests for dynamic fleet membership: replicas join and drain
// in the middle of a distributed sweep, and the merged result must stay
// byte-identical to an in-process Sweep — membership changes move *where* a
// cell runs, never *what* it returns. CI runs these under -race.

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"cdcs"
	"cdcs/internal/server"
	"cdcs/internal/testutil"
)

// memberReplica starts one replica on a real listener with dynamic
// membership (Advertise derived from the bound address, like `cdcs-serve
// -advertise auto`), so joins, leaves, drains and gossip run over real HTTP.
func memberReplica(t *testing.T, opts server.Options) (*server.Server, string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	url := "http://" + ln.Addr().String()
	opts.Advertise = url
	s, err := server.New(opts)
	if err != nil {
		ln.Close()
		t.Fatal(err)
	}
	hs := &http.Server{Handler: s.Handler()}
	go hs.Serve(ln)
	t.Cleanup(func() { s.Close(); hs.Close() })
	return s, url
}

// joinedPair builds a converged two-member fleet: b joins through a, warm.
func joinedPair(t *testing.T) (urlA, urlB string) {
	t.Helper()
	_, urlA = memberReplica(t, server.Options{})
	b, urlB := memberReplica(t, server.Options{Join: urlA})
	if _, err := b.JoinFleet(context.Background()); err != nil {
		t.Fatal(err)
	}
	return urlA, urlB
}

func containsURL(list []string, url string) bool {
	for _, u := range list {
		if u == url {
			return true
		}
	}
	return false
}

// TestSweepJoinMidCampaignAbsorbsCells is the tentpole churn proof for
// joins: a third replica warm-joins through a seed while a sweep is in
// flight, the coordinator adopts the grown membership from healthz
// snapshots, the joiner absorbs cells dispatched after the join — and the
// merged result is byte-identical to the in-process Sweep.
func TestSweepJoinMidCampaignAbsorbsCells(t *testing.T) {
	req := distGrid()
	local, err := cdcs.Sweep(req)
	if err != nil {
		t.Fatal(err)
	}
	localJSON, err := json.Marshal(local)
	if err != nil {
		t.Fatal(err)
	}

	urlA, urlB := joinedPair(t)
	joiner, joinerURL := memberReplica(t, server.Options{Join: urlA})

	var (
		joinOnce  sync.Once
		adopted   = make(chan struct{})
		adoptOnce sync.Once
	)
	res, stats, err := cdcs.SweepDistributed(req, []string{urlA, urlB}, cdcs.DistributedSweepOptions{
		Parallelism:        1, // serialize cells so the join lands between dispatches
		FleetProbeInterval: 10 * time.Millisecond,
		OnMembership: func(members []string, epoch uint64) {
			if containsURL(members, joinerURL) {
				adoptOnce.Do(func() { close(adopted) })
			}
		},
		Progress: func(done, total int) {
			if done != 4 {
				return
			}
			// Mid-sweep: join the fleet warm, then hold the sweep until
			// the coordinator has adopted the 3-member view, so the
			// remaining cells are dispatched over live membership.
			joinOnce.Do(func() {
				if _, jerr := joiner.JoinFleet(context.Background()); jerr != nil {
					t.Errorf("mid-sweep join: %v", jerr)
					adoptOnce.Do(func() { close(adopted) })
					return
				}
				select {
				case <-adopted:
				case <-time.After(10 * time.Second):
					t.Error("coordinator never adopted the joiner")
					adoptOnce.Do(func() { close(adopted) })
				}
			})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	resJSON, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resJSON, localJSON) {
		t.Error("sweep with a mid-campaign join is not byte-identical to the in-process Sweep")
	}
	if got := stats.Cells[joinerURL]; got == 0 {
		t.Errorf("joiner absorbed no cells: %+v", stats.Cells)
	}
}

// TestSweepDrainMidCampaignZeroFailures is the churn proof for drains: a
// member drains mid-sweep, its not-yet-dispatched cells retry onto the
// survivor via the retryable 503 path, the sweep completes with zero failed
// cells and the result stays byte-identical.
func TestSweepDrainMidCampaignZeroFailures(t *testing.T) {
	req := distGrid()
	local, err := cdcs.Sweep(req)
	if err != nil {
		t.Fatal(err)
	}
	localJSON, err := json.Marshal(local)
	if err != nil {
		t.Fatal(err)
	}

	urlA, urlB := joinedPair(t)
	var drainOnce sync.Once
	res, stats, err := cdcs.SweepDistributed(req, []string{urlA, urlB}, cdcs.DistributedSweepOptions{
		Parallelism:        1,
		FleetProbeInterval: 10 * time.Millisecond,
		Progress: func(done, total int) {
			if done != 4 {
				return
			}
			drainOnce.Do(func() {
				resp, derr := http.Post(urlB+"/v1/drain", "application/json", strings.NewReader(""))
				if derr != nil {
					t.Errorf("mid-sweep drain: %v", derr)
					return
				}
				resp.Body.Close()
			})
		},
	})
	if err != nil {
		t.Fatalf("sweep failed after a mid-campaign drain: %v", err)
	}
	resJSON, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resJSON, localJSON) {
		t.Error("sweep with a mid-campaign drain is not byte-identical to the in-process Sweep")
	}
	// Every cell landed somewhere; the drained member's refusals were
	// retried, not failed.
	total := 0
	for _, n := range stats.Cells {
		total += n
	}
	if total != len(res.Cells) {
		t.Errorf("served %d cells, want %d (%+v)", total, len(res.Cells), stats.Cells)
	}

	// The drained replica finishes its lifecycle: healthz flips to 503
	// "drained" and it leaves the survivor's member list.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, herr := http.Get(urlB + "/healthz")
		drained := false
		if herr == nil {
			var body struct {
				Status string `json:"status"`
			}
			json.NewDecoder(resp.Body).Decode(&body)
			resp.Body.Close()
			drained = body.Status == "drained"
		}
		if drained {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("drained replica never reported drained")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestKillDuringWarmJoinLeavesFleetConsistent is the churn proof for join
// failure: the seed dies after serving its manifest but before the joiner's
// announce, so the join aborts with the fleet unchanged — no member list
// anywhere contains the joiner — and a retry after revival succeeds.
func TestKillDuringWarmJoinLeavesFleetConsistent(t *testing.T) {
	seed, seedURL := memberReplica(t, server.Options{})

	// Give the seed a corpus so the warm fill has work to do.
	if _, _, err := cdcs.SweepDistributed(distGrid(), []string{seedURL}, cdcs.DistributedSweepOptions{}); err != nil {
		t.Fatal(err)
	}

	// The joiner reaches the seed through a fault proxy whose backend
	// kills it the moment the manifest has been served — the seed dies
	// mid-join, after the handshake started but before the announce.
	var killAfterManifest sync.Once
	var proxyRef struct {
		sync.Mutex
		p *testutil.FaultProxy
	}
	hooked := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		seed.Handler().ServeHTTP(w, r)
		if r.URL.Path == "/v1/manifest" {
			killAfterManifest.Do(func() {
				proxyRef.Lock()
				defer proxyRef.Unlock()
				if proxyRef.p != nil {
					proxyRef.p.Kill()
				}
			})
		}
	})
	backend := &http.Server{Handler: hooked}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go backend.Serve(ln)
	t.Cleanup(func() { backend.Close() })
	proxy, err := testutil.NewFaultProxy("http://" + ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(proxy.Close)
	proxyRef.Lock()
	proxyRef.p = proxy
	proxyRef.Unlock()

	joiner, joinerURL := memberReplica(t, server.Options{Join: proxy.URL()})
	if _, err := joiner.JoinFleet(context.Background()); err == nil {
		t.Fatal("join survived the seed dying before the announce")
	}
	// Fleet unchanged: the joiner is in nobody's member list, not even its
	// own, and the seed's view is intact.
	resp, err := http.Get(seedURL + "/v1/members")
	if err != nil {
		t.Fatal(err)
	}
	var view struct {
		Members []string `json:"members"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if containsURL(view.Members, joinerURL) {
		t.Fatalf("aborted join left the joiner in the seed's view: %v", view.Members)
	}
	if !containsURL(view.Members, seedURL) {
		t.Fatalf("seed lost itself after the aborted join: %v", view.Members)
	}

	// Revive the seed: the retry joins warm.
	proxy.Revive()
	st, err := joiner.JoinFleet(context.Background())
	if err != nil {
		t.Fatalf("join retry after revival: %v", err)
	}
	if st.Keys == 0 || st.Failed != 0 {
		t.Fatalf("retry warm fill stats = %+v", st)
	}
	if st.Members != 2 {
		t.Fatalf("post-retry fleet size = %d, want 2", st.Members)
	}
}
