package cdcs

// Serializable request forms for the serving API (cmd/cdcs-serve). A request
// fully determines its result: simulation is bit-deterministic (randomness is
// derived from the request's seeds, never from shared state — see
// internal/sim), so the SHA-256 of a canonicalized request is a correct
// content address for its response and identical requests may be served from
// cache with a byte-identity guarantee.

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"cdcs/internal/exp"
)

// Mix spec kinds.
const (
	// MixRandom draws N single-threaded apps from seed (see RandomMix).
	MixRandom = "random"
	// MixRandomMT draws N 8-thread apps from seed (see RandomMTMix).
	MixRandomMT = "random-mt"
	// MixApps is an explicit benchmark list (order matters: it fixes thread
	// and VC indices, which seed-driven placement consumes in order).
	MixApps = "apps"
	// MixCaseStudy is the paper's §II-B 36-core mix.
	MixCaseStudy = "casestudy"
)

// AppSpec is one entry of an explicit mix: Count instances of a benchmark.
type AppSpec struct {
	Bench string `json:"bench"`
	Count int    `json:"count"`
	// MT selects the 8-thread profile set (see MTBenchmarks).
	MT bool `json:"mt,omitempty"`
}

// MixSpec is the serializable description of a workload mix.
type MixSpec struct {
	// Kind is one of MixRandom, MixRandomMT, MixApps, MixCaseStudy.
	Kind string `json:"kind"`
	// Seed drives random mixes (MixRandom, MixRandomMT).
	Seed int64 `json:"seed,omitempty"`
	// N is the app count for random mixes.
	N int `json:"n,omitempty"`
	// Apps is the explicit list for MixApps.
	Apps []AppSpec `json:"apps,omitempty"`
}

// normalize zeroes fields the kind does not consume, so two specs that build
// the same mix hash identically, and defaults Count for explicit entries.
func (s MixSpec) normalize() (MixSpec, error) {
	switch s.Kind {
	case MixRandom, MixRandomMT:
		if s.N < 1 {
			return s, fmt.Errorf("cdcs: %s mix needs n >= 1", s.Kind)
		}
		s.Apps = nil
	case MixApps:
		if len(s.Apps) == 0 {
			return s, fmt.Errorf("cdcs: apps mix needs a non-empty app list")
		}
		s.Seed, s.N = 0, 0
		apps := make([]AppSpec, len(s.Apps))
		for i, a := range s.Apps {
			if a.Count == 0 {
				a.Count = 1
			}
			if a.Count < 0 {
				return s, fmt.Errorf("cdcs: app %q has negative count", a.Bench)
			}
			apps[i] = a
		}
		s.Apps = apps
	case MixCaseStudy:
		s.Seed, s.N, s.Apps = 0, 0, nil
	case "":
		return s, fmt.Errorf("cdcs: mix spec needs a kind (one of %q, %q, %q, %q)",
			MixRandom, MixRandomMT, MixApps, MixCaseStudy)
	default:
		return s, fmt.Errorf("cdcs: unknown mix kind %q", s.Kind)
	}
	return s, nil
}

// Label returns a short human-readable descriptor of the mix, for table
// rows and progress lines ("random(seed 7, n 16)", "apps(2xomnet,1xmilc)").
func (s MixSpec) Label() string {
	switch s.Kind {
	case MixRandom, MixRandomMT:
		return fmt.Sprintf("%s(seed %d, n %d)", s.Kind, s.Seed, s.N)
	case MixApps:
		parts := make([]string, len(s.Apps))
		for i, a := range s.Apps {
			n := a.Count
			if n == 0 {
				n = 1
			}
			suffix := ""
			if a.MT {
				suffix = ":mt"
			}
			parts[i] = fmt.Sprintf("%dx%s%s", n, a.Bench, suffix)
		}
		return "apps(" + strings.Join(parts, ",") + ")"
	default:
		return s.Kind
	}
}

// Build materializes the mix. It validates benchmark names, so an invalid
// spec fails here rather than mid-simulation.
func (s MixSpec) Build() (*Mix, error) {
	ns, err := s.normalize()
	if err != nil {
		return nil, err
	}
	switch ns.Kind {
	case MixRandom:
		return RandomMix(ns.Seed, ns.N)
	case MixRandomMT:
		return RandomMTMix(ns.Seed, ns.N)
	case MixApps:
		m := NewMix()
		for _, a := range ns.Apps {
			if a.MT {
				err = m.AddMT(a.Bench, a.Count)
			} else {
				err = m.Add(a.Bench, a.Count)
			}
			if err != nil {
				return nil, err
			}
		}
		if m.Threads() == 0 {
			return nil, fmt.Errorf("cdcs: apps mix resolved to zero threads")
		}
		m.inner.Seal()
		return m, nil
	case MixCaseStudy:
		return CaseStudyMix(), nil
	}
	return nil, fmt.Errorf("cdcs: unknown mix kind %q", ns.Kind) // unreachable after normalize
}

// SchemeByName resolves a scheme's display name ("S-NUCA", "R-NUCA",
// "Jigsaw+C", "Jigsaw+R", "CDCS") to the Scheme value.
func SchemeByName(name string) (Scheme, bool) {
	for _, s := range Schemes() {
		if s.Name() == name {
			return s, true
		}
	}
	return Scheme{}, false
}

// SchemeNames lists the standard scheme names in the paper's order.
func SchemeNames() []string {
	ss := Schemes()
	out := make([]string, len(ss))
	for i, s := range ss {
		out[i] = s.Name()
	}
	return out
}

// CompareRequest is the canonical form of a Compare call: config, mix,
// scheme set and seed. It round-trips through JSON, and Hash gives its
// content address.
type CompareRequest struct {
	// Config is the machine model; nil means DefaultConfig.
	Config *Config `json:"config,omitempty"`
	// Mix describes the workload.
	Mix MixSpec `json:"mix"`
	// Schemes lists scheme names; the first is the baseline. Empty means all
	// five standard schemes (S-NUCA baseline).
	Schemes []string `json:"schemes,omitempty"`
	// Seed drives thread placement: scheme i runs with Seed+i.
	Seed int64 `json:"seed"`
}

// Canonical validates the request and fills defaults (DefaultConfig, the
// standard scheme list), so that requests differing only in how defaults were
// spelled hash identically.
func (r CompareRequest) Canonical() (CompareRequest, error) {
	if r.Config == nil {
		c := DefaultConfig()
		r.Config = &c
	} else {
		c := *r.Config // don't alias the caller's struct
		r.Config = &c
	}
	if _, err := NewSystem(*r.Config); err != nil {
		return r, err
	}
	mix, err := r.Mix.normalize()
	if err != nil {
		return r, err
	}
	r.Mix = mix
	if len(r.Schemes) == 0 {
		r.Schemes = SchemeNames()
	} else {
		r.Schemes = append([]string(nil), r.Schemes...)
		for _, name := range r.Schemes {
			if _, ok := SchemeByName(name); !ok {
				return r, fmt.Errorf("cdcs: unknown scheme %q (known: %v)", name, SchemeNames())
			}
		}
	}
	return r, nil
}

// Hash returns the request's content address: the SHA-256 of the canonical
// request, hex-encoded. Two requests hash equal iff they ask for the same
// computation — JSON field order, omitted defaults and spelled-out defaults
// do not matter. Execution options (parallelism, timeouts) are deliberately
// not part of the request: results are bit-identical for any worker count.
func (r CompareRequest) Hash() (string, error) {
	c, err := r.Canonical()
	if err != nil {
		return "", err
	}
	return hashJSON("compare/v1", c)
}

// Run executes the canonicalized request.
func (r CompareRequest) Run(opts RunOptions) (*Comparison, error) {
	c, err := r.Canonical()
	if err != nil {
		return nil, err
	}
	sys, err := NewSystem(*c.Config)
	if err != nil {
		return nil, err
	}
	mix, err := c.Mix.Build()
	if err != nil {
		return nil, err
	}
	schemes := make([]Scheme, len(c.Schemes))
	for i, name := range c.Schemes {
		schemes[i], _ = SchemeByName(name) // validated by Canonical
	}
	return sys.CompareWithOptions(mix, c.Seed, opts, schemes...)
}

// ExperimentRequest is the canonical form of an Experiment call. Experiments
// are addressed by id (see ExperimentIDs).
type ExperimentRequest struct {
	ID string `json:"id"`
	// Quick trims mix counts for fast smoke runs.
	Quick bool `json:"quick,omitempty"`
	// Mixes overrides the number of mixes per point when > 0.
	Mixes int `json:"mixes,omitempty"`
	// Seed anchors all randomness; 0 means 1 (the default seed).
	Seed int64 `json:"seed,omitempty"`
}

// KnownExperiment reports whether id names a registered experiment (see
// ExperimentIDs).
func KnownExperiment(id string) bool {
	ids := ExperimentIDs()
	i := sort.SearchStrings(ids, id)
	return i < len(ids) && ids[i] == id
}

// Canonical validates the request and fills the default seed. The experiment
// id must exist (use ExperimentIDs to list).
func (r ExperimentRequest) Canonical() (ExperimentRequest, error) {
	if r.ID == "" {
		return r, fmt.Errorf("cdcs: experiment request needs an id")
	}
	if !KnownExperiment(r.ID) {
		return r, fmt.Errorf("cdcs: unknown experiment %q", r.ID)
	}
	if r.Seed == 0 {
		r.Seed = 1
	}
	if r.Mixes < 0 {
		return r, fmt.Errorf("cdcs: negative mix count %d", r.Mixes)
	}
	// A spelled-out default mix count runs the identical computation as an
	// omitted one, so it must hash to the same content address.
	def := exp.DefaultOptions()
	if r.Quick {
		def = exp.QuickOptions()
	}
	if r.Mixes == def.Mixes {
		r.Mixes = 0
	}
	return r, nil
}

// Hash returns the request's content address (see CompareRequest.Hash).
func (r ExperimentRequest) Hash() (string, error) {
	c, err := r.Canonical()
	if err != nil {
		return "", err
	}
	return hashJSON("experiment/v1", c)
}

// Run executes the canonicalized request and returns the formatted report.
func (r ExperimentRequest) Run(opts RunOptions) (string, error) {
	c, err := r.Canonical()
	if err != nil {
		return "", err
	}
	eo := exp.DefaultOptions()
	if c.Quick {
		eo = exp.QuickOptions()
	}
	if c.Mixes > 0 {
		eo.Mixes = c.Mixes
	}
	eo.Seed = c.Seed
	eo.Parallelism = opts.Parallelism
	eo.Context = opts.Context
	eo.Progress = opts.Progress
	rep, err := exp.Run(c.ID, eo)
	if err != nil {
		return "", err
	}
	return rep.String(), nil
}

// hashJSON hashes a domain-separation tag plus the canonical JSON encoding.
// encoding/json writes struct fields in declaration order, so the encoding —
// and therefore the hash — is deterministic and independent of the field
// order of whatever document the value was parsed from.
func hashJSON(tag string, v any) (string, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return "", err
	}
	h := sha256.New()
	h.Write([]byte(tag))
	h.Write([]byte{0})
	h.Write(b)
	return hex.EncodeToString(h.Sum(nil)), nil
}
